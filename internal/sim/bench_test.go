package sim_test

import (
	"testing"

	"wincm/internal/sim"
)

// BenchmarkSimulate measures one full window simulation per algorithm —
// the inner loop of the theorem-sweep experiments.
func BenchmarkSimulate(b *testing.B) {
	for _, alg := range []sim.Algorithm{sim.Offline, sim.Online, sim.OneShot} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(sim.Params{
					M: 32, N: 16, C: 16, ColBias: 0.7,
					Algorithm: alg, Seed: uint64(i) + 1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
