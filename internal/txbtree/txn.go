package txbtree

import (
	"sort"

	"wincm/internal/stm"
)

// readEnt is one semantic read-set entry. Item reads record the key's
// binding at read time — its home leaf, that leaf's version, the slot's
// version, and presence; range reads record a visited leaf, its version,
// and the predicate bounds.
type readEnt[V any] struct {
	key     int
	lo, hi  int // range entries only
	leaf    *node[V]
	leafVer uint64
	slotVer uint64
	present bool
	isRange bool
}

// writeEnt is one buffered write: an upsert of (key, val) or a delete of
// key. The write set holds at most one entry per key (later operations
// overwrite earlier ones).
type writeEnt[V any] struct {
	key int
	val V
	del bool
}

// txState is one thread's per-attempt transaction state against one
// tree: the semantic read and write sets, the lock entries acquired at
// validation, and reusable traversal scratch. It is the tree's
// stm.SemanticOps implementation; enter registers it with each new
// attempt. Owner-thread-only.
type txState[V any] struct {
	tree *Tree[V]
	tx   *stm.Tx
	// word is the attempt's packed status word at registration; a
	// mismatch against the live word marks a new attempt and resets the
	// state (attempt serials strictly advance).
	word     uint64
	reads    []readEnt[V]
	writes   []writeEnt[V]
	acquired []*lockEntry
	path     []*node[V]
	scratch  []writeEnt[V] // range-scan merge buffer
}

var _ stm.SemanticOps = (*txState[int])(nil)

// enter fetches the calling thread's state, resetting and re-registering
// it on the first operation of each attempt and incrementally
// revalidating the read set on subsequent ones (the opacity guard: a
// stale read is discovered at the next tree operation, not at commit,
// so user code never computes on two commit orders for long).
func (t *Tree[V]) enter(tx *stm.Tx) *txState[V] {
	tx.SemanticOpen()
	st := t.state(tx.D.ThreadID)
	if w := tx.StatusWord(); st.word != w {
		st.word = w
		st.tx = tx
		st.reads = st.reads[:0]
		st.writes = st.writes[:0]
		st.acquired = st.acquired[:0]
		tx.AddSemantic(st)
	} else {
		st.revalidate(tx)
	}
	return st
}

// state returns the per-thread state for thread id, growing the table on
// demand. The fast path is one atomic load and an index.
func (t *Tree[V]) state(id int) *txState[V] {
	if s := *t.states.Load(); id < len(s) {
		return s[id]
	}
	t.growMu.Lock()
	defer t.growMu.Unlock()
	cur := *t.states.Load()
	if id < len(cur) {
		return cur[id]
	}
	grown := make([]*txState[V], id+1)
	copy(grown, cur)
	for i := len(cur); i <= id; i++ {
		grown[i] = &txState[V]{tree: t}
	}
	t.states.Store(&grown)
	return grown[id]
}

// revalidate re-checks the logged reads against the live tree (leaf
// version fast path, key-level recheck slow path) and restarts the
// attempt if any read's binding truly changed.
func (st *txState[V]) revalidate(tx *stm.Tx) {
	for i := range st.reads {
		e := &st.reads[i]
		if e.leaf.ver.Load() == e.leafVer {
			continue
		}
		if e.isRange || !e.recheck() {
			tx.AddSemanticConflicts(1)
			st.tree.statSem.Add(1)
			tx.RetryNow()
		}
		// Leaf churned but the key's binding held — a false conflict a
		// node-granularity structure would have aborted on. The recheck
		// promoted the entry, so commit-time validation fast-paths.
		tx.AddFalseConflictsAvoided(1)
		st.tree.statFalse.Add(1)
	}
}

// bufGet looks key up in the private write set.
func (st *txState[V]) bufGet(key int) (val V, del, found bool) {
	for i := range st.writes {
		if st.writes[i].key == key {
			return st.writes[i].val, st.writes[i].del, true
		}
	}
	return
}

// bufPut records an upsert or delete of key, overwriting any earlier
// buffered operation on the same key.
func (st *txState[V]) bufPut(key int, val V, del bool) {
	for i := range st.writes {
		if st.writes[i].key == key {
			st.writes[i].val, st.writes[i].del = val, del
			return
		}
	}
	st.writes = append(st.writes, writeEnt[V]{key: key, val: val, del: del})
}

// countSMO tallies one structural modification (split or root growth)
// into the attempt and the tree.
func (st *txState[V]) countSMO() {
	st.tx.AddStructuralOps(1)
	st.tree.statSmo.Add(1)
}

// read performs the logged read of key: drain in-flight writers of the
// key, read its binding, log the semantic read entry.
func (st *txState[V]) read(tx *stm.Tx, key int) (V, bool) {
	t := st.tree
	if n := t.locks.probe(tx, key, stm.ReadWrite); n > 0 {
		tx.AddSemanticConflicts(n)
		t.statSem.Add(uint64(n))
	}
	leaf, leafVer, val, slotVer, present := t.lookup(key)
	st.reads = append(st.reads, readEnt[V]{
		key: key, leaf: leaf, leafVer: leafVer, slotVer: slotVer, present: present,
	})
	return val, present
}

// Get returns key's value inside tx, honoring the transaction's own
// buffered writes. The steady-state path allocates nothing.
func (t *Tree[V]) Get(tx *stm.Tx, key int) (V, bool) {
	st := t.enter(tx)
	if v, del, ok := st.bufGet(key); ok {
		return v, !del
	}
	return st.read(tx, key)
}

// Contains reports whether key is present inside tx.
func (t *Tree[V]) Contains(tx *stm.Tx, key int) bool {
	_, ok := t.Get(tx, key)
	return ok
}

// Insert upserts (key, val) inside tx, reporting whether the key was
// absent. The write is buffered — the physical tree is untouched until
// the attempt commits.
func (t *Tree[V]) Insert(tx *stm.Tx, key int, val V) bool {
	st := t.enter(tx)
	var present bool
	if _, del, ok := st.bufGet(key); ok {
		present = !del
	} else {
		_, present = st.read(tx, key)
	}
	st.bufPut(key, val, false)
	return !present
}

// Delete removes key inside tx, reporting whether it was present.
func (t *Tree[V]) Delete(tx *stm.Tx, key int) bool {
	st := t.enter(tx)
	var present bool
	if _, del, ok := st.bufGet(key); ok {
		present = !del
	} else {
		_, present = st.read(tx, key)
	}
	var zero V
	st.bufPut(key, zero, true)
	return present
}

// Scan calls fn for each (key, value) with lo ≤ key < hi, in ascending
// key order, honoring the transaction's buffered writes. It returns
// early if fn returns false. The range predicate is protected against
// phantoms: each visited leaf is logged with its version (strictly
// validated at commit) and the commit-time sweep of the lock table
// catches in-flight inserts of unseen keys.
func (t *Tree[V]) Scan(tx *stm.Tx, lo, hi int, fn func(key int, val V) bool) {
	if hi <= lo {
		return
	}
	st := t.enter(tx)
	st.scratch = st.scratch[:0]
	nd := t.leafFor(lo)
	for {
		ndVer := nd.ver.Load()
		for i := 0; i < nd.n; i++ {
			if k := nd.keys[i]; k >= lo && k < hi {
				st.scratch = append(st.scratch, writeEnt[V]{key: k, val: nd.vals[i]})
			}
		}
		st.reads = append(st.reads, readEnt[V]{
			lo: lo, hi: hi, leaf: nd, leafVer: ndVer, isRange: true,
		})
		if !nd.hasHi || nd.hi >= hi {
			nd.mu.RUnlock()
			break
		}
		next := nd.right
		nd.mu.RUnlock()
		nd = next
		nd.mu.RLock()
	}
	// Overlay the private write set: upserts add or replace, deletes
	// drop, then emit in key order.
	for i := range st.writes {
		w := &st.writes[i]
		if w.key < lo || w.key >= hi {
			continue
		}
		found := false
		for j := range st.scratch {
			if st.scratch[j].key == w.key {
				st.scratch[j] = *w
				found = true
				break
			}
		}
		if !found && !w.del {
			st.scratch = append(st.scratch, *w)
		}
	}
	sort.Slice(st.scratch, func(i, j int) bool { return st.scratch[i].key < st.scratch[j].key })
	for i := range st.scratch {
		if st.scratch[i].del {
			continue
		}
		if !fn(st.scratch[i].key, st.scratch[i].val) {
			return
		}
	}
}

// Validate implements stm.SemanticOps: acquire the key-level write locks
// in sorted key order, then check every logged read while the locks pin
// the write set — the same lock-then-validate order the lazy engine uses
// for TVars, and sound for the same reason: once validation passes, no
// conflicting commit can slip between it and the status CAS without
// either hitting our locks or bumping a leaf version we checked.
func (st *txState[V]) Validate(tx *stm.Tx) bool {
	t := st.tree
	if len(st.writes) > 1 {
		sort.Slice(st.writes, func(i, j int) bool { return st.writes[i].key < st.writes[j].key })
	}
	for i := range st.writes {
		e, n := t.locks.acquire(tx, st.writes[i].key)
		st.acquired = append(st.acquired, e)
		if n > 0 {
			tx.AddSemanticConflicts(n)
			t.statSem.Add(uint64(n))
		}
	}
	for i := range st.reads {
		e := &st.reads[i]
		if e.isRange {
			if n := t.locks.sweepRange(tx, e.lo, e.hi); n > 0 {
				tx.AddSemanticConflicts(n)
				t.statSem.Add(uint64(n))
			}
			if e.leaf.ver.Load() != e.leafVer {
				tx.AddSemanticConflicts(1)
				t.statSem.Add(1)
				return false
			}
			continue
		}
		if n := t.locks.probe(tx, e.key, stm.ReadWrite); n > 0 {
			tx.AddSemanticConflicts(n)
			t.statSem.Add(uint64(n))
		}
		if e.leaf.ver.Load() == e.leafVer {
			continue
		}
		if !e.recheck() {
			tx.AddSemanticConflicts(1)
			t.statSem.Add(1)
			return false
		}
		// The leaf changed under the read but the key's binding did not:
		// the abort a node-granularity conflict set would have taken.
		tx.AddFalseConflictsAvoided(1)
		t.statFalse.Add(1)
	}
	return true
}

// Finalize implements stm.SemanticOps: apply the buffered writes to the
// physical tree if the attempt committed (splits and root growth happen
// here, off every conflict set), then unlink the lock entries and reset.
func (st *txState[V]) Finalize(tx *stm.Tx, committed bool) {
	t := st.tree
	if committed {
		for i := range st.writes {
			w := &st.writes[i]
			t.applyOp(st, w.key, w.val, w.del)
		}
	}
	for _, e := range st.acquired {
		t.locks.release(e)
	}
	st.acquired = st.acquired[:0]
	st.reads = st.reads[:0]
	st.writes = st.writes[:0]
}
