// Package txbtree implements a transactional B+ tree with key-level
// (semantic) conflict detection over the STM's SemanticOps seam.
//
// The physical structure is a B-link tree (Lehman–Yao): every node carries
// a right-sibling pointer and an upper fence key, splits move the upper
// half of a node into a fresh right sibling, and a traversal that lands on
// a node whose fence excludes its key simply chases right links. Keys only
// ever move rightward and nodes are never freed or merged, so a traversal
// holding no locks across hops can never be stranded — the invariant the
// whole design leans on. Node access uses plain per-node RWMutex latches
// held for the duration of one node visit only; none of this state lives
// in TVars and none of it ever enters an STM conflict set.
//
// Transactions interact with the tree through a semantic read/write set
// instead (txn.go): reads log (key, leaf, leaf-version, slot-version,
// presence), writes buffer (key, value, delete) privately, and commit-time
// validation re-checks the reads — per-leaf version fast path, key-level
// re-locate slow path — while key-level write locks (lock.go) are held.
// Conflicts discovered there route through the installed contention
// manager exactly like TVar ownership conflicts, so all managers and both
// engines run unchanged. Structural modifications — leaf and inner splits,
// root growth — happen while applying the buffered writes after the commit
// point; they are non-transactional side effects that abort nobody.
package txbtree

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// maxKeys is the per-node fan-out. 32 keeps a leaf's key array on two
// cache lines while making splits rare; lookups scan linearly, which at
// this width beats a branchy binary search.
const maxKeys = 32

// node is one B-link node. A node is created as either a leaf (level 0,
// vals/slotV populated) or an inner node (level > 0, kids populated) and
// never changes role. All fields except ver are guarded by mu; ver is
// atomic so validation fast paths can poll it without the latch.
type node[V any] struct {
	mu sync.RWMutex
	// ver counts mutations of this node's key set and payload. It is
	// bumped under the write latch on every change (including the
	// donor's shrink at a split) and seeded from the donor at a split,
	// so the version a key's home leaf carries is monotone along the
	// key's rightward movement chain — the property slot validation
	// depends on.
	ver atomic.Uint64
	// level is 0 for leaves and parent level = child level + 1. It is
	// immutable; root growth uses it to re-find a split node's parent
	// when the descent stack has gone stale.
	level int
	n     int
	keys  [maxKeys]int
	// hi is the node's upper fence: the node covers keys < hi when hasHi
	// is set; the rightmost node of a level has no fence. right is the
	// B-link sibling covering [hi, …).
	hasHi bool
	hi    int
	right *node[V]
	// Leaf payload: vals[i] and slotV[i] ride with keys[i]. slotV is the
	// node ver at the slot's last mutation — a comparable proxy for "this
	// key's binding is unchanged" that survives the slot moving to a
	// sibling at a split.
	vals  [maxKeys]V
	slotV [maxKeys]uint64
	// Inner payload: kids[i] covers keys < keys[i]; kids[n] covers the
	// rest of the node's range.
	kids [maxKeys + 1]*node[V]
}

// search returns the index of key and true, or the insertion point and
// false. Caller holds the latch (either mode).
func (nd *node[V]) search(key int) (int, bool) {
	for i := 0; i < nd.n; i++ {
		if nd.keys[i] >= key {
			return i, nd.keys[i] == key
		}
	}
	return nd.n, false
}

// childFor returns the child covering key. Caller holds the latch and has
// already chased right links, so key < hi here.
func (nd *node[V]) childFor(key int) *node[V] {
	for i := 0; i < nd.n; i++ {
		if key < nd.keys[i] {
			return nd.kids[i]
		}
	}
	return nd.kids[nd.n]
}

// Tree is a transactional B+ tree mapping int keys to V values. All
// transactional access goes through Get/Contains/Insert/Delete/Scan with
// an active stm.Tx; Keys and CheckInvariants are quiescent helpers. A
// Tree may be shared by every thread of one stm.Runtime; using it from
// two runtimes at once is not supported (per-thread state is indexed by
// the runtime's thread IDs).
type Tree[V any] struct {
	root atomic.Pointer[node[V]]
	// smoMu serializes root growth only — the one structural operation
	// that cannot be localized to a latched node. Never held together
	// with a node latch.
	smoMu sync.Mutex
	locks lockTable
	// states holds the per-thread transaction state, grown on demand
	// under growMu and read lock-free (state()).
	states atomic.Pointer[[]*txState[V]]
	growMu sync.Mutex
	// Structure-level stat counters, mirrored into the per-attempt
	// telemetry tallies; tests read these for exact per-run numbers.
	statSem, statSmo, statFalse atomic.Uint64
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	t := &Tree[V]{}
	t.root.Store(&node[V]{level: 0})
	empty := make([]*txState[V], 0)
	t.states.Store(&empty)
	return t
}

// Stats reports the tree's cumulative semantic-conflict, structural-op
// and false-conflict-avoided counts (exact; the per-attempt telemetry
// tallies mirror them modulo fold timing).
func (t *Tree[V]) Stats() (semanticConflicts, structuralOps, falseConflictsAvoided uint64) {
	return t.statSem.Load(), t.statSmo.Load(), t.statFalse.Load()
}

// leafFor descends to the leaf covering key and returns it read-latched.
// The descent holds at most one latch at a time: nodes are never freed,
// so dropping a parent before latching the child is safe, and the fence
// check re-routes right whenever a split moved the key past the node.
func (t *Tree[V]) leafFor(key int) *node[V] {
	nd := t.root.Load()
	for {
		nd.mu.RLock()
		for nd.hasHi && key >= nd.hi {
			r := nd.right
			nd.mu.RUnlock()
			nd = r
			nd.mu.RLock()
		}
		if nd.level == 0 {
			return nd
		}
		next := nd.childFor(key)
		nd.mu.RUnlock()
		nd = next
	}
}

// lookup reads key's current binding: the leaf it belongs to, that leaf's
// version, and the slot's value/version/presence — everything a semantic
// read entry records. Allocation-free.
func (t *Tree[V]) lookup(key int) (leaf *node[V], leafVer uint64, val V, slotVer uint64, present bool) {
	leaf = t.leafFor(key)
	leafVer = leaf.ver.Load()
	if i, ok := leaf.search(key); ok {
		val, slotVer, present = leaf.vals[i], leaf.slotV[i], true
	}
	leaf.mu.RUnlock()
	return
}

// recheck re-establishes a read entry's validity after its fast-path leaf
// version moved: re-locate the key from the logged leaf via right links
// (keys only move right) and compare presence and slot version. On
// success the entry is promoted to the key's current home so subsequent
// fast paths hit again. Returns false if the key's binding truly changed.
func (e *readEnt[V]) recheck() bool {
	nd := e.leaf
	nd.mu.RLock()
	for nd.hasHi && e.key >= nd.hi {
		r := nd.right
		nd.mu.RUnlock()
		nd = r
		nd.mu.RLock()
	}
	i, ok := nd.search(e.key)
	same := ok == e.present && (!ok || nd.slotV[i] == e.slotVer)
	if same {
		e.leaf = nd
		e.leafVer = nd.ver.Load()
	}
	nd.mu.RUnlock()
	return same
}

// applyOp applies one committed buffered write to the physical tree:
// delete-in-place, update-in-place, insert, or insert-with-split. It runs
// after the owning attempt's commit point, while the attempt still holds
// the key's lock-table entry, so no concurrent committer races it on the
// same key. Structural work it triggers is counted but conflicts with
// nobody.
func (t *Tree[V]) applyOp(st *txState[V], key int, val V, del bool) {
	// Descend once, remembering the inner path for a potential split's
	// parent insertion. The stack may go stale under concurrent splits;
	// insertParent compensates with right moves (and, for a vanished
	// root, a level-bounded re-descent).
	st.path = st.path[:0]
	nd := t.root.Load()
	for {
		nd.mu.RLock()
		for nd.hasHi && key >= nd.hi {
			r := nd.right
			nd.mu.RUnlock()
			nd = r
			nd.mu.RLock()
		}
		if nd.level == 0 {
			nd.mu.RUnlock()
			break
		}
		st.path = append(st.path, nd)
		next := nd.childFor(key)
		nd.mu.RUnlock()
		nd = next
	}
	// Re-latch the leaf in write mode; a split may have moved the key
	// right between the latch modes.
	nd.mu.Lock()
	for nd.hasHi && key >= nd.hi {
		r := nd.right
		nd.mu.Unlock()
		nd = r
		nd.mu.Lock()
	}
	i, ok := nd.search(key)
	switch {
	case del:
		if ok {
			copy(nd.keys[i:], nd.keys[i+1:nd.n])
			copy(nd.vals[i:], nd.vals[i+1:nd.n])
			copy(nd.slotV[i:], nd.slotV[i+1:nd.n])
			nd.n--
			var zero V
			nd.vals[nd.n] = zero
			nd.ver.Add(1)
		}
		nd.mu.Unlock()
	case ok:
		nd.vals[i] = val
		nd.slotV[i] = nd.ver.Add(1)
		nd.mu.Unlock()
	case nd.n < maxKeys:
		copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
		copy(nd.vals[i+1:nd.n+1], nd.vals[i:nd.n])
		copy(nd.slotV[i+1:nd.n+1], nd.slotV[i:nd.n])
		nd.keys[i], nd.vals[i] = key, val
		nd.n++
		nd.slotV[i] = nd.ver.Add(1)
		nd.mu.Unlock()
	default:
		t.splitLeaf(st, nd, key, val)
	}
}

// splitLeaf splits the full, write-latched leaf nd and inserts (key, val)
// into the appropriate half. The sibling is fully built and linked before
// the latch drops, so no traversal can observe a half-split leaf; the
// separator then propagates up via insertParent.
func (t *Tree[V]) splitLeaf(st *txState[V], nd *node[V], key int, val V) {
	mid := maxKeys / 2
	s := &node[V]{level: 0}
	s.n = copy(s.keys[:], nd.keys[mid:nd.n])
	copy(s.vals[:], nd.vals[mid:nd.n])
	copy(s.slotV[:], nd.slotV[mid:nd.n])
	s.hasHi, s.hi, s.right = nd.hasHi, nd.hi, nd.right
	// Seed the sibling's version from the donor: any slot version already
	// issued for a moved key stays below every version the sibling will
	// issue, keeping slot versions monotone per key.
	s.ver.Store(nd.ver.Load())
	sep := nd.keys[mid]
	var zero V
	for i := mid; i < nd.n; i++ {
		nd.vals[i] = zero
	}
	nd.n = mid
	nd.hasHi, nd.hi, nd.right = true, sep, s
	// Insert the pending key while the donor is still latched — the
	// sibling is unreachable until the latch drops, so it needs no latch.
	target := nd
	if key >= sep {
		target = s
	}
	i, _ := target.search(key)
	copy(target.keys[i+1:target.n+1], target.keys[i:target.n])
	copy(target.vals[i+1:target.n+1], target.vals[i:target.n])
	copy(target.slotV[i+1:target.n+1], target.slotV[i:target.n])
	target.keys[i], target.vals[i] = key, val
	target.n++
	target.slotV[i] = target.ver.Add(1)
	if target == nd {
		s.ver.Add(1)
	} else {
		nd.ver.Add(1)
	}
	nd.mu.Unlock()
	st.countSMO()
	t.insertParent(st, nd, sep, s)
}

// insertParent links a freshly split-off sibling into the split node's
// parent, splitting upward as needed. left is the node that split; sep is
// the promoted separator (the sibling's minimum key bound).
func (t *Tree[V]) insertParent(st *txState[V], left *node[V], sep int, sibling *node[V]) {
	for {
		var p *node[V]
		if n := len(st.path); n > 0 {
			p = st.path[n-1]
			st.path = st.path[:n-1]
		} else if p = t.growRoot(st, left, sep, sibling); p == nil {
			return
		}
		p.mu.Lock()
		for p.hasHi && sep >= p.hi {
			r := p.right
			p.mu.Unlock()
			p = r
			p.mu.Lock()
		}
		i, _ := p.search(sep)
		if p.n < maxKeys {
			copy(p.keys[i+1:p.n+1], p.keys[i:p.n])
			copy(p.kids[i+2:p.n+2], p.kids[i+1:p.n+1])
			p.keys[i], p.kids[i+1] = sep, sibling
			p.n++
			p.ver.Add(1)
			p.mu.Unlock()
			return
		}
		// Inner split: promote the middle key; p keeps [0,mid), the new
		// sibling takes (mid, n), and the pending (sep, child) lands in
		// whichever side covers it before the latch drops.
		mid := maxKeys / 2
		psep := p.keys[mid]
		s := &node[V]{level: p.level}
		s.n = copy(s.keys[:], p.keys[mid+1:p.n])
		copy(s.kids[:], p.kids[mid+1:p.n+1])
		s.hasHi, s.hi, s.right = p.hasHi, p.hi, p.right
		s.ver.Store(p.ver.Load())
		p.n = mid
		p.hasHi, p.hi, p.right = true, psep, s
		target := p
		if sep >= psep {
			target = s
		}
		i, _ = target.search(sep)
		copy(target.keys[i+1:target.n+1], target.keys[i:target.n])
		copy(target.kids[i+2:target.n+2], target.kids[i+1:target.n+1])
		target.keys[i], target.kids[i+1] = sep, sibling
		target.n++
		p.ver.Add(1)
		s.ver.Add(1)
		p.mu.Unlock()
		st.countSMO()
		left, sep, sibling = p, psep, s
	}
}

// growRoot handles the stack-exhausted case of insertParent: left was the
// root when the descent began. If it still is, a new root adopts the pair
// and the split is complete (returns nil). Otherwise another thread grew
// the tree first; re-descend from the current root to left's parent level
// and return that node as the insertion parent.
func (t *Tree[V]) growRoot(st *txState[V], left *node[V], sep int, sibling *node[V]) *node[V] {
	t.smoMu.Lock()
	if t.root.Load() == left {
		nr := &node[V]{level: left.level + 1, n: 1}
		nr.keys[0] = sep
		nr.kids[0], nr.kids[1] = left, sibling
		t.root.Store(nr)
		t.smoMu.Unlock()
		st.countSMO()
		return nil
	}
	t.smoMu.Unlock()
	nd := t.root.Load()
	for {
		nd.mu.RLock()
		for nd.hasHi && sep >= nd.hi {
			r := nd.right
			nd.mu.RUnlock()
			nd = r
			nd.mu.RLock()
		}
		if nd.level == left.level+1 {
			nd.mu.RUnlock()
			return nd
		}
		next := nd.childFor(sep)
		nd.mu.RUnlock()
		nd = next
	}
}

// leftmostLeaf returns the first leaf of the tree (quiescent helper).
func (t *Tree[V]) leftmostLeaf() *node[V] {
	nd := t.root.Load()
	for nd.level > 0 {
		nd.mu.RLock()
		next := nd.kids[0]
		nd.mu.RUnlock()
		nd = next
	}
	return nd
}

// Keys returns a sorted snapshot of the key set, read non-transactionally;
// call it only while no transactions run (tests and verification).
func (t *Tree[V]) Keys() []int {
	var out []int
	for nd := t.leftmostLeaf(); nd != nil; {
		nd.mu.RLock()
		out = append(out, nd.keys[:nd.n]...)
		next := nd.right
		nd.mu.RUnlock()
		nd = next
	}
	return out
}

// Len returns the number of keys, read non-transactionally (quiescent).
func (t *Tree[V]) Len() int {
	n := 0
	for nd := t.leftmostLeaf(); nd != nil; {
		nd.mu.RLock()
		n += nd.n
		next := nd.right
		nd.mu.RUnlock()
		nd = next
	}
	return n
}

// CheckInvariants verifies the B-link structure quiescently: keys sorted
// and in-fence at every node, child levels consistent, sibling chains
// fence-connected, and every inner separator equal to the low bound of
// its right child's key range. The harness calls it after verification
// runs; it must only run while no transactions are active.
func (t *Tree[V]) CheckInvariants() error {
	root := t.root.Load()
	return t.checkNode(root, root.level, nil, false)
}

func (t *Tree[V]) checkNode(nd *node[V], level int, lo *int, hasLo bool) error {
	if nd.level != level {
		return fmt.Errorf("txbtree: node at level %d recorded level %d", level, nd.level)
	}
	for i := 0; i < nd.n; i++ {
		if i > 0 && nd.keys[i-1] >= nd.keys[i] {
			return fmt.Errorf("txbtree: unsorted keys at level %d: %d !< %d", level, nd.keys[i-1], nd.keys[i])
		}
		if hasLo && nd.keys[i] < *lo {
			return fmt.Errorf("txbtree: key %d below low bound %d at level %d", nd.keys[i], *lo, level)
		}
		if nd.hasHi && nd.keys[i] >= nd.hi {
			return fmt.Errorf("txbtree: key %d at/above fence %d at level %d", nd.keys[i], nd.hi, level)
		}
	}
	if level == 0 {
		return nil
	}
	for i := 0; i <= nd.n; i++ {
		child := nd.kids[i]
		if child == nil {
			return fmt.Errorf("txbtree: nil child %d at level %d", i, level)
		}
		if child.level != level-1 {
			return fmt.Errorf("txbtree: child level %d under level %d", child.level, level)
		}
		clo, chasLo := lo, hasLo
		if i > 0 {
			k := nd.keys[i-1]
			clo, chasLo = &k, true
		}
		if err := t.checkNode(child, level-1, clo, chasLo); err != nil {
			return err
		}
	}
	return nil
}
