package txbtree

import (
	"runtime"
	"sync"
	"sync/atomic"

	"wincm/internal/stm"
)

// lockTable is the tree's key-level write-lock table. A committing
// attempt inserts one entry per buffered write key during semantic
// validation and unlinks them after applying (or discarding) its writes,
// so an entry's lifetime brackets the key's commit window exactly:
// validation-to-post-apply. Everyone else — readers at operation time,
// validators at commit time — probes the table to discover in-flight
// writers of a key and routes genuine conflicts through the contention
// manager.
//
// Entries are immutable after publication and never recycled: a prober
// may still be walking an entry after its owner unlinked it, and a pooled
// entry rewritten for a different key would teleport that prober into the
// wrong chain. The chain links stay intact on unlink for the same reason.
// Bucket mutation (insert, unlink) serializes on the bucket mutex;
// probing walks the chain lock-free through the atomic links.
//
// Liveness of an entry is judged by its owner's live status word, not by
// a flag: the entry captures the owner's packed (serial, status) word at
// acquisition, and a serial mismatch against the owner's current word
// proves the owning attempt has terminated and finished its cleanup —
// the entry is dead no matter where the unlink has gotten to.
const lockBuckets = 256

type lockEntry struct {
	key   int
	owner *stm.Tx
	word  uint64
	next  atomic.Pointer[lockEntry]
}

type lockBucket struct {
	mu   sync.Mutex
	head atomic.Pointer[lockEntry]
	_    [40]byte
}

type lockTable struct {
	buckets [lockBuckets]lockBucket
}

func (lt *lockTable) bucket(key int) *lockBucket {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return &lt.buckets[h>>(64-8)]
}

// alive classifies an entry against its owner's live status word: dead
// (terminated and cleaned up, or aborted), active, or committed but not
// yet applied/unlinked.
func (e *lockEntry) alive() (st stm.Status, live bool) {
	w := e.owner.StatusWord()
	if stm.SerialOf(w) != stm.SerialOf(e.word) {
		return 0, false
	}
	st = stm.StatusOf(w)
	return st, st != stm.Aborted
}

// probe blocks until no foreign writer holds key: active owners are
// resolved through the contention manager (kind is ReadWrite from a
// reader's vantage point, WriteRead is never generated here — semantic
// reads are invisible), committed-but-unapplied owners are drained with a
// spin (their apply is a few latched stores away). The caller must hold
// no latches. Returns the number of CM resolutions performed.
func (lt *lockTable) probe(tx *stm.Tx, key int, kind stm.Kind) int {
	b := lt.bucket(key)
	attempt, conflicts := 0, 0
	for {
		var blocking *lockEntry
		var st stm.Status
		for e := b.head.Load(); e != nil; e = e.next.Load() {
			if e.key != key || e.owner == tx {
				continue
			}
			if s, live := e.alive(); live {
				blocking, st = e, s
				break
			}
		}
		if blocking == nil {
			return conflicts
		}
		if st == stm.Active {
			conflicts++
			tx.ResolveConflict(blocking.owner, blocking.word, kind, &attempt)
			continue
		}
		// Committed, apply in flight: wait it out, staying responsive to
		// our own remote abort.
		if tx.Status() != stm.Active {
			tx.RetryNow()
		}
		runtime.Gosched()
	}
}

// acquire publishes tx's write lock on key, resolving foreign holders
// first exactly like probe (kind WriteWrite — both sides want to commit
// the key). The published entry is returned for the caller's release
// list. Callers acquire keys in sorted order.
func (lt *lockTable) acquire(tx *stm.Tx, key int) (*lockEntry, int) {
	b := lt.bucket(key)
	attempt, conflicts := 0, 0
	for {
		b.mu.Lock()
		var blocking *lockEntry
		var st stm.Status
		for e := b.head.Load(); e != nil; e = e.next.Load() {
			if e.key != key || e.owner == tx {
				continue
			}
			if s, live := e.alive(); live {
				blocking, st = e, s
				break
			}
		}
		if blocking == nil {
			e := &lockEntry{key: key, owner: tx, word: tx.StatusWord()}
			e.next.Store(b.head.Load())
			b.head.Store(e)
			b.mu.Unlock()
			return e, conflicts
		}
		b.mu.Unlock()
		if st == stm.Active {
			conflicts++
			tx.ResolveConflict(blocking.owner, blocking.word, stm.WriteWrite, &attempt)
			continue
		}
		if tx.Status() != stm.Active {
			tx.RetryNow()
		}
		runtime.Gosched()
	}
}

// release unlinks e from its bucket. The entry's links stay intact so a
// concurrent prober parked on e can keep walking.
func (lt *lockTable) release(e *lockEntry) {
	b := lt.bucket(e.key)
	b.mu.Lock()
	if b.head.Load() == e {
		b.head.Store(e.next.Load())
	} else {
		for p := b.head.Load(); p != nil; p = p.next.Load() {
			if p.next.Load() == e {
				p.next.Store(e.next.Load())
				break
			}
		}
	}
	b.mu.Unlock()
}

// sweepRange drains every foreign lock on a key in [lo, hi): the phantom
// guard for range predicates. A writer's pending insert of a key the
// range reader never saw is visible only here — as the writer's lock
// entry — so the sweep runs before the per-leaf version checks and keeps
// re-walking until a pass finds no live foreign in-range entry. Range
// validation is rare, so the full-table walk (a few hundred atomic loads)
// is cheap insurance. Returns the number of CM resolutions performed.
func (lt *lockTable) sweepRange(tx *stm.Tx, lo, hi int) int {
	attempt, conflicts := 0, 0
	for {
		var blocking *lockEntry
		var st stm.Status
	scan:
		for i := range lt.buckets {
			for e := lt.buckets[i].head.Load(); e != nil; e = e.next.Load() {
				if e.key < lo || e.key >= hi || e.owner == tx {
					continue
				}
				if s, live := e.alive(); live {
					blocking, st = e, s
					break scan
				}
			}
		}
		if blocking == nil {
			return conflicts
		}
		if st == stm.Active {
			conflicts++
			tx.ResolveConflict(blocking.owner, blocking.word, stm.WriteWrite, &attempt)
			continue
		}
		if tx.Status() != stm.Active {
			tx.RetryNow()
		}
		runtime.Gosched()
	}
}
