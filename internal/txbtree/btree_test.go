package txbtree_test

import (
	"sort"
	"sync"
	"testing"

	"wincm/internal/cm"
	"wincm/internal/rng"
	"wincm/internal/stm"
	"wincm/internal/txbtree"
)

func newRT(t testing.TB, m int, opts ...stm.Option) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New("polka", m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr, opts...)
}

// backends runs fn once per engine.
func backends(t *testing.T, fn func(t *testing.T, opts ...stm.Option)) {
	t.Run("eager", func(t *testing.T) { fn(t) })
	t.Run("lazy", func(t *testing.T) { fn(t, stm.WithLazyBackend()) })
}

func TestBasicOps(t *testing.T) {
	backends(t, func(t *testing.T, opts ...stm.Option) {
		rt := newRT(t, 1, opts...)
		th := rt.Thread(0)
		tr := txbtree.New[int]()
		const n = 2000
		for i := 0; i < n; i++ {
			k := (i * 7919) % n // shuffled insertion order forces splits everywhere
			th.Atomic(func(tx *stm.Tx) {
				if !tr.Insert(tx, k, k*10) {
					t.Errorf("Insert(%d) reported present on first insert", k)
				}
			})
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got := tr.Len(); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
		th.Atomic(func(tx *stm.Tx) {
			if v, ok := tr.Get(tx, 1234); !ok || v != 12340 {
				t.Errorf("Get(1234) = %d,%v want 12340,true", v, ok)
			}
			if tr.Contains(tx, n) {
				t.Errorf("Contains(%d) = true for absent key", n)
			}
			if tr.Insert(tx, 50, 999) {
				t.Errorf("Insert(50) reported absent on re-insert")
			}
		})
		th.Atomic(func(tx *stm.Tx) {
			if v, _ := tr.Get(tx, 50); v != 999 {
				t.Errorf("Get(50) = %d after upsert, want 999", v)
			}
		})
		// Delete every third key; a delete inside the same transaction as
		// a lookup must be visible to the transaction's own reads.
		for k := 0; k < n; k += 3 {
			th.Atomic(func(tx *stm.Tx) {
				if !tr.Delete(tx, k) {
					t.Errorf("Delete(%d) reported absent", k)
				}
				if tr.Contains(tx, k) {
					t.Errorf("Contains(%d) = true after own delete", k)
				}
			})
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		keys := tr.Keys()
		if !sort.IntsAreSorted(keys) {
			t.Fatal("Keys() not sorted")
		}
		for _, k := range keys {
			if k%3 == 0 {
				t.Fatalf("deleted key %d still present", k)
			}
		}
		// Scan must agree with Keys on a sub-range and honor buffered writes.
		th.Atomic(func(tx *stm.Tx) {
			tr.Insert(tx, 3, -1) // buffered re-insert of a deleted key
			var got []int
			tr.Scan(tx, 0, 10, func(k, v int) bool { got = append(got, k); return true })
			want := []int{1, 2, 3, 4, 5, 7, 8}
			if len(got) != len(want) {
				t.Fatalf("Scan[0,10) = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Scan[0,10) = %v, want %v", got, want)
				}
			}
		})
		th.Atomic(func(tx *stm.Tx) {
			if v, ok := tr.Get(tx, 3); !ok || v != -1 {
				t.Errorf("Get(3) = %d,%v after committed re-insert, want -1,true", v, ok)
			}
		})
	})
}

// TestSplitsAbortNothing is the structural-ops acceptance test: M threads
// insert disjoint key ranges — zero key-level conflicts by construction —
// with enough volume to force leaf splits, inner splits and root growth.
// Every one of those structural modifications stays out of the conflict
// sets, so not a single transaction may abort, and the tree's counters
// must show the work happened (structural ops > 0, semantic conflicts 0).
func TestSplitsAbortNothing(t *testing.T) {
	backends(t, func(t *testing.T, opts ...stm.Option) {
		const (
			m      = 8
			perThr = 3000
		)
		rt := newRT(t, m, opts...)
		tr := txbtree.New[int]()
		var wg sync.WaitGroup
		aborts := make([]int, m)
		for id := 0; id < m; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < perThr; i++ {
					k := id*perThr + i
					info := th.Atomic(func(tx *stm.Tx) {
						tr.Insert(tx, k, k)
					})
					aborts[id] += info.Aborts()
				}
			}(id)
		}
		wg.Wait()
		total := 0
		for _, a := range aborts {
			total += a
		}
		if total != 0 {
			t.Errorf("disjoint-key inserts aborted %d times; structural ops leaked into a conflict set", total)
		}
		sem, smo, _ := tr.Stats()
		if sem != 0 {
			t.Errorf("semantic conflicts = %d, want 0 for disjoint keys", sem)
		}
		if smo == 0 {
			t.Error("structural ops = 0; the workload did not force splits")
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got, want := tr.Len(), m*perThr; got != want {
			t.Fatalf("Len = %d, want %d", got, want)
		}
	})
}

// TestCounterSerializes drives every thread through read-modify-write
// transactions on one hot key; key-level validation must serialize them
// so no increment is lost, on both engines.
func TestCounterSerializes(t *testing.T) {
	backends(t, func(t *testing.T, opts ...stm.Option) {
		const (
			m      = 8
			perThr = 400
		)
		rt := newRT(t, m, opts...)
		rt.SetYieldEvery(1) // force fine-grained interleaving on small hosts
		tr := txbtree.New[int]()
		var wg sync.WaitGroup
		for id := 0; id < m; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				for i := 0; i < perThr; i++ {
					th.Atomic(func(tx *stm.Tx) {
						v, _ := tr.Get(tx, 42)
						tr.Insert(tx, 42, v+1)
					})
				}
			}(id)
		}
		wg.Wait()
		var got int
		rt.Thread(0).Atomic(func(tx *stm.Tx) {
			got, _ = tr.Get(tx, 42)
		})
		if want := m * perThr; got != want {
			t.Fatalf("counter = %d, want %d (lost updates)", got, want)
		}
	})
}

// TestScanPairInvariant stresses phantom protection: writers atomically
// toggle key pairs (2k, 2k+1) — insert both or delete both — while
// scanners verify every observed even key has its odd partner. A scan
// that misses an in-flight insert (a phantom) or sees half a toggle
// breaks the pairing.
func TestScanPairInvariant(t *testing.T) {
	backends(t, func(t *testing.T, opts ...stm.Option) {
		const (
			writers = 4
			readers = 3
			pairs   = 64
			rounds  = 300
		)
		rt := newRT(t, writers+readers, opts...)
		rt.SetYieldEvery(1)
		tr := txbtree.New[int]()
		var wg sync.WaitGroup
		for id := 0; id < writers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				r := rng.New(uint64(id)*77 + 1)
				for i := 0; i < rounds; i++ {
					k := 2 * r.Intn(pairs)
					th.Atomic(func(tx *stm.Tx) {
						if tr.Contains(tx, k) {
							tr.Delete(tx, k)
							tr.Delete(tx, k+1)
						} else {
							tr.Insert(tx, k, i)
							tr.Insert(tx, k+1, i)
						}
					})
				}
			}(id)
		}
		bad := make([]int, readers)
		for id := 0; id < readers; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(writers + id)
				for i := 0; i < rounds; i++ {
					var seen []int
					th.Atomic(func(tx *stm.Tx) {
						seen = seen[:0]
						tr.Scan(tx, 0, 2*pairs, func(k, v int) bool {
							seen = append(seen, k)
							return true
						})
					})
					present := map[int]bool{}
					for _, k := range seen {
						present[k] = true
					}
					for _, k := range seen {
						if !present[k^1] {
							bad[id]++
						}
					}
				}
			}(id)
		}
		wg.Wait()
		for id, n := range bad {
			if n > 0 {
				t.Errorf("reader %d saw %d unpaired keys (phantom or torn toggle)", id, n)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFalseConflictAvoidance shows the point of the key-level slow path:
// threads hammer disjoint keys that share leaves, so leaf versions churn
// under every committing reader — and the recheck proves the reads stand,
// avoiding the aborts a node-granularity structure would take.
func TestFalseConflictAvoidance(t *testing.T) {
	const (
		m      = 4
		perThr = 800
		span   = 8 // keys interleave within leaves
	)
	rt := newRT(t, m)
	rt.SetYieldEvery(1)
	tr := txbtree.New[int]()
	var wg sync.WaitGroup
	for id := 0; id < m; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := rt.Thread(id)
			for i := 0; i < perThr; i++ {
				k := (i%span)*m + id // same leaves, disjoint keys
				th.Atomic(func(tx *stm.Tx) {
					v, _ := tr.Get(tx, k)
					tr.Insert(tx, k, v+1)
				})
			}
		}(id)
	}
	wg.Wait()
	sem, _, avoided := tr.Stats()
	if sem != 0 {
		t.Errorf("semantic conflicts = %d, want 0 for disjoint keys", sem)
	}
	if avoided == 0 {
		t.Error("false-conflicts-avoided = 0; expected leaf-version churn with valid reads")
	}
	var total int
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		total = 0
		tr.Scan(tx, 0, span*m, func(k, v int) bool { total += v; return true })
	})
	if want := m * perThr; total != want {
		t.Fatalf("sum of counters = %d, want %d", total, want)
	}
}
