// Package kmeans implements a STAMP-style kmeans clustering benchmark over
// the STM — the first of the additional STAMP workloads the paper's
// conclusion defers to future work ("we also plan to continue our
// evaluation in other complex benchmarks from the STAMP suite (such as
// kmeans, bayes, genome, ...)").
//
// Structure follows STAMP kmeans: a shared set of K cluster accumulators;
// each transaction assigns one point to its nearest center (reading all K
// center positions) and folds the point into that center's accumulator
// (one write). Contention concentrates on K hot variables — a different
// conflict shape from the pointer-chasing set benchmarks: small read sets,
// a single contended write, no traversals to re-execute.
package kmeans

import (
	"fmt"
	"math"

	"wincm/internal/rng"
	"wincm/internal/stm"
)

// Dim is the point dimensionality (STAMP uses low-dimensional inputs).
const Dim = 4

// Point is one input sample.
type Point [Dim]float64

// center is one cluster's transactional state: its current position and
// the accumulator of assigned points.
type center struct {
	Pos   Point
	Sum   Point
	Count int64
}

// Config parameterizes the benchmark.
type Config struct {
	// K is the number of clusters — fewer clusters means hotter spots.
	K int
	// Points is the input set size.
	Points int
	// Spread scatters the synthetic input around K true centers.
	Spread float64
	// Seed drives input generation.
	Seed uint64
}

// KMeans is the shared clustering state.
type KMeans struct {
	cfg     Config
	points  []Point
	centers []*stm.TVar[center]
}

// New generates a synthetic input of cfg.Points samples around cfg.K true
// centers and initializes the cluster accumulators at random positions.
func New(cfg Config) *KMeans {
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.Points <= 0 {
		cfg.Points = 4096
	}
	if cfg.Spread <= 0 {
		cfg.Spread = 0.1
	}
	r := rng.New(cfg.Seed)
	truth := make([]Point, cfg.K)
	for i := range truth {
		for d := 0; d < Dim; d++ {
			truth[i][d] = r.Float64()
		}
	}
	k := &KMeans{cfg: cfg}
	k.points = make([]Point, cfg.Points)
	for i := range k.points {
		t := truth[r.Intn(cfg.K)]
		for d := 0; d < Dim; d++ {
			k.points[i][d] = t[d] + (r.Float64()-0.5)*cfg.Spread
		}
	}
	k.centers = make([]*stm.TVar[center], cfg.K)
	for i := range k.centers {
		k.centers[i] = stm.NewTVar(center{Pos: truth[(i+1)%cfg.K]})
	}
	return k
}

// Config returns the benchmark configuration.
func (k *KMeans) Config() Config { return k.cfg }

// dist2 is the squared Euclidean distance.
func dist2(a, b Point) float64 {
	var s float64
	for d := 0; d < Dim; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// Assign runs one assignment transaction on th: read every center
// position, pick the nearest to points[idx], and fold the point into that
// center's accumulator. It returns the chosen cluster and the commit
// statistics.
func (k *KMeans) Assign(th *stm.Thread, idx int) (int, stm.TxInfo) {
	p := k.points[idx%len(k.points)]
	best := 0
	info := th.Atomic(func(tx *stm.Tx) {
		bestD := math.Inf(1)
		best = 0
		for i, cv := range k.centers {
			c := stm.Read(tx, cv)
			if d := dist2(p, c.Pos); d < bestD {
				bestD, best = d, i
			}
		}
		cv := k.centers[best]
		c := stm.Read(tx, cv)
		for d := 0; d < Dim; d++ {
			c.Sum[d] += p[d]
		}
		c.Count++
		stm.Write(tx, cv, c)
	})
	return best, info
}

// Recenter runs the update phase transactionally: every center moves to
// the mean of its accumulated points and the accumulators reset. Empty
// clusters keep their position.
func (k *KMeans) Recenter(th *stm.Thread) {
	th.Atomic(func(tx *stm.Tx) {
		for _, cv := range k.centers {
			c := stm.Read(tx, cv)
			if c.Count > 0 {
				for d := 0; d < Dim; d++ {
					c.Pos[d] = c.Sum[d] / float64(c.Count)
				}
			}
			c.Sum = Point{}
			c.Count = 0
			stm.Write(tx, cv, c)
		}
	})
}

// Assigned returns the total number of points folded into accumulators
// since the last Recenter (quiescent states only).
func (k *KMeans) Assigned() int64 {
	var total int64
	for _, cv := range k.centers {
		total += cv.Peek().Count
	}
	return total
}

// Cost returns the mean squared distance of every input point to its
// nearest center position (quiescent states only) — the quantity Lloyd
// iterations minimize.
func (k *KMeans) Cost() float64 {
	positions := make([]Point, len(k.centers))
	for i, cv := range k.centers {
		positions[i] = cv.Peek().Pos
	}
	var total float64
	for _, p := range k.points {
		best := math.Inf(1)
		for _, pos := range positions {
			if d := dist2(p, pos); d < best {
				best = d
			}
		}
		total += best
	}
	return total / float64(len(k.points))
}

// Verify checks accumulator sanity in a quiescent state: non-negative
// counts, finite sums, and per-center mean positions inside the input's
// bounding box (inflated by the spread).
func (k *KMeans) Verify() error {
	for i, cv := range k.centers {
		c := cv.Peek()
		if c.Count < 0 {
			return fmt.Errorf("kmeans: center %d has negative count %d", i, c.Count)
		}
		for d := 0; d < Dim; d++ {
			if math.IsNaN(c.Sum[d]) || math.IsInf(c.Sum[d], 0) {
				return fmt.Errorf("kmeans: center %d has invalid sum %v", i, c.Sum)
			}
			if c.Count > 0 {
				mean := c.Sum[d] / float64(c.Count)
				lo, hi := -1.0, 2.0
				if mean < lo || mean > hi {
					return fmt.Errorf("kmeans: center %d mean %v outside input range", i, mean)
				}
			}
		}
	}
	return nil
}
