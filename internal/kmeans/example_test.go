package kmeans_test

import (
	"fmt"

	"wincm/internal/cm"
	"wincm/internal/kmeans"
	"wincm/internal/stm"
)

// Example assigns points to clusters transactionally and recenters.
func Example() {
	k := kmeans.New(kmeans.Config{K: 4, Points: 256, Seed: 1})
	rt := stm.New(1, cm.NewPolka())
	th := rt.Thread(0)
	for i := 0; i < 256; i++ {
		k.Assign(th, i)
	}
	before := k.Cost()
	k.Recenter(th)
	fmt.Println(k.Assigned() == 0, k.Cost() <= before, k.Verify() == nil)
	// Output: true true true
}
