package kmeans_test

import (
	"math"
	"sync"
	"testing"

	"wincm/internal/cm"
	_ "wincm/internal/core" // registers the window-based managers
	"wincm/internal/kmeans"
	"wincm/internal/stm"
)

func newRT(t testing.TB, name string, m int) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New(name, m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr)
}

func TestConfigDefaults(t *testing.T) {
	k := kmeans.New(kmeans.Config{})
	c := k.Config()
	if c.K <= 0 || c.Points <= 0 || c.Spread <= 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAssignAccumulates(t *testing.T) {
	k := kmeans.New(kmeans.Config{K: 3, Points: 100, Seed: 1})
	rt := newRT(t, "polka", 1)
	th := rt.Thread(0)
	for i := 0; i < 100; i++ {
		cluster, info := k.Assign(th, i)
		if cluster < 0 || cluster >= 3 {
			t.Fatalf("cluster %d out of range", cluster)
		}
		if info.Attempts != 1 {
			t.Fatalf("single-threaded assign took %d attempts", info.Attempts)
		}
	}
	if got := k.Assigned(); got != 100 {
		t.Errorf("Assigned = %d, want 100", got)
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRecenterMovesTowardData(t *testing.T) {
	k := kmeans.New(kmeans.Config{K: 2, Points: 500, Spread: 0.05, Seed: 2})
	rt := newRT(t, "polka", 1)
	th := rt.Thread(0)
	for i := 0; i < 500; i++ {
		k.Assign(th, i)
	}
	k.Recenter(th)
	if got := k.Assigned(); got != 0 {
		t.Errorf("accumulators not reset: %d", got)
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
	// A second pass after recentering must strictly not diverge: total
	// within-cluster distance is finite and positions stay in range.
	for i := 0; i < 500; i++ {
		if c, _ := k.Assign(th, i); c < 0 || c >= 2 {
			t.Fatal("bad cluster")
		}
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentAssignConservation: every committed assignment lands in
// exactly one accumulator, under classic and window managers.
func TestConcurrentAssignConservation(t *testing.T) {
	for _, name := range []string{"polka", "online-dynamic", "adaptive-improved-dynamic"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const m, per = 8, 300
			k := kmeans.New(kmeans.Config{K: 4, Points: 1024, Seed: 3})
			rt := newRT(t, name, m)
			rt.SetYieldEvery(4)
			var wg sync.WaitGroup
			for i := 0; i < m; i++ {
				wg.Add(1)
				go func(id int, th *stm.Thread) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						k.Assign(th, id*per+j)
					}
				}(i, rt.Thread(i))
			}
			wg.Wait()
			if got := k.Assigned(); got != m*per {
				t.Errorf("accumulated %d points, want %d", got, m*per)
			}
			if err := k.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConvergenceSingleThread: repeated assign/recenter epochs shrink the
// clustering cost (kmeans actually works on the STM).
func TestConvergenceSingleThread(t *testing.T) {
	k := kmeans.New(kmeans.Config{K: 4, Points: 2000, Spread: 0.02, Seed: 5})
	rt := newRT(t, "polka", 1)
	th := rt.Thread(0)
	before := k.Cost()
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i < 2000; i++ {
			k.Assign(th, i)
		}
		k.Recenter(th)
	}
	after := k.Cost()
	if math.IsNaN(after) || math.IsInf(after, 0) {
		t.Fatalf("cost diverged: %v", after)
	}
	if after >= before {
		t.Errorf("cost did not improve: %v → %v", before, after)
	}
	if err := k.Verify(); err != nil {
		t.Fatal(err)
	}
}
