// Package txhash provides a transactional chained hash map with string
// keys over the STM. The genome extension benchmark uses it to
// deduplicate DNA segments (STAMP genome phase 1 does the same with a
// concurrent hashtable), and it doubles as a fourth set-style workload
// with O(1) transactions — the opposite contention profile of List.
//
// Buckets are fixed at construction; each bucket is a chain of immutable
// entries linked through transactional pointer cells, the same cell
// pattern as the List benchmark, so conflicts are per-bucket-chain hop.
package txhash

import (
	"wincm/internal/stm"
)

// entry is one immutable chain node: key and value never change after
// insertion; next is a transactional cell.
type entry[V any] struct {
	key  string
	val  *stm.TVar[V]
	next *stm.TVar[*entry[V]]
}

// Map is a transactional hash map from string keys to V values.
type Map[V any] struct {
	buckets []*stm.TVar[*entry[V]]
}

// New returns a map with the given bucket count (rounded up to 1).
func New[V any](buckets int) *Map[V] {
	if buckets < 1 {
		buckets = 1
	}
	m := &Map[V]{buckets: make([]*stm.TVar[*entry[V]], buckets)}
	for i := range m.buckets {
		m.buckets[i] = stm.NewTVar[*entry[V]](nil)
	}
	return m
}

// Buckets returns the bucket count.
func (m *Map[V]) Buckets() int { return len(m.buckets) }

// fnv1a hashes key (FNV-1a, the stdlib algorithm, inlined to keep the
// hot path allocation-free).
func fnv1a(key string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

// bucket returns the chain head cell for key.
func (m *Map[V]) bucket(key string) *stm.TVar[*entry[V]] {
	return m.buckets[fnv1a(key)%uint64(len(m.buckets))]
}

// lookup walks key's chain and returns its entry, or nil.
func (m *Map[V]) lookup(tx *stm.Tx, key string) *entry[V] {
	for e := stm.Read(tx, m.bucket(key)); e != nil; e = stm.Read(tx, e.next) {
		if e.key == key {
			return e
		}
	}
	return nil
}

// Contains reports whether key is present.
func (m *Map[V]) Contains(tx *stm.Tx, key string) bool {
	return m.lookup(tx, key) != nil
}

// Get returns the value bound to key.
func (m *Map[V]) Get(tx *stm.Tx, key string) (V, bool) {
	if e := m.lookup(tx, key); e != nil {
		return stm.Read(tx, e.val), true
	}
	var zero V
	return zero, false
}

// Insert binds key→val and reports true, or returns false when key is
// already present (the existing binding is untouched).
func (m *Map[V]) Insert(tx *stm.Tx, key string, val V) bool {
	head := m.bucket(key)
	if m.lookup(tx, key) != nil {
		return false
	}
	first := stm.Read(tx, head)
	e := &entry[V]{key: key, val: stm.NewTVar(val), next: stm.NewTVar(first)}
	stm.Write(tx, head, e)
	return true
}

// Put binds key→val, overwriting any existing binding; it reports whether
// the key was new.
func (m *Map[V]) Put(tx *stm.Tx, key string, val V) bool {
	if e := m.lookup(tx, key); e != nil {
		stm.Write(tx, e.val, val)
		return false
	}
	return m.Insert(tx, key, val)
}

// Delete removes key, reporting whether it was present.
func (m *Map[V]) Delete(tx *stm.Tx, key string) bool {
	head := m.bucket(key)
	prev := head
	for {
		e := stm.Read(tx, prev)
		if e == nil {
			return false
		}
		if e.key == key {
			stm.Write(tx, prev, stm.Read(tx, e.next))
			return true
		}
		prev = e.next
	}
}

// Len counts the bindings transactionally (O(buckets + entries)).
func (m *Map[V]) Len(tx *stm.Tx) int {
	n := 0
	for _, b := range m.buckets {
		for e := stm.Read(tx, b); e != nil; e = stm.Read(tx, e.next) {
			n++
		}
	}
	return n
}

// PeekGet looks key up non-transactionally; call only while no
// transactions run (phase barriers, verification).
func (m *Map[V]) PeekGet(key string) (V, bool) {
	for e := m.bucket(key).Peek(); e != nil; e = e.next.Peek() {
		if e.key == key {
			return e.val.Peek(), true
		}
	}
	var zero V
	return zero, false
}

// Keys returns every key, unordered, read non-transactionally; call only
// while no transactions run.
func (m *Map[V]) Keys() []string {
	var out []string
	for _, b := range m.buckets {
		for e := b.Peek(); e != nil; e = e.next.Peek() {
			out = append(out, e.key)
		}
	}
	return out
}
