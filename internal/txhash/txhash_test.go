package txhash_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"wincm/internal/cm"
	_ "wincm/internal/core" // registers the window-based managers
	"wincm/internal/rng"
	"wincm/internal/stm"
	"wincm/internal/txhash"
)

func newRT(t testing.TB, m int) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New("polka", m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr)
}

func TestBasicOps(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	m := txhash.New[int](16)
	th.Atomic(func(tx *stm.Tx) {
		if m.Contains(tx, "a") {
			t.Error("empty map contains a")
		}
		if !m.Insert(tx, "a", 1) {
			t.Error("insert failed")
		}
		if m.Insert(tx, "a", 2) {
			t.Error("duplicate insert succeeded")
		}
		if v, ok := m.Get(tx, "a"); !ok || v != 1 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		if m.Put(tx, "a", 3) {
			t.Error("Put on existing reported new")
		}
		if v, _ := m.Get(tx, "a"); v != 3 {
			t.Errorf("after Put: %d", v)
		}
		if !m.Put(tx, "b", 9) {
			t.Error("Put on fresh key reported existing")
		}
		if m.Len(tx) != 2 {
			t.Errorf("Len = %d", m.Len(tx))
		}
		if !m.Delete(tx, "a") {
			t.Error("delete failed")
		}
		if m.Delete(tx, "a") {
			t.Error("double delete succeeded")
		}
		if m.Len(tx) != 1 {
			t.Errorf("Len after delete = %d", m.Len(tx))
		}
	})
	keys := m.Keys()
	if len(keys) != 1 || keys[0] != "b" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestSingleBucketChains(t *testing.T) {
	// Bucket count 1 forces every key through one chain: exercises chain
	// traversal, middle deletion, and head deletion.
	rt := newRT(t, 1)
	th := rt.Thread(0)
	m := txhash.New[int](0) // rounds up to 1
	if m.Buckets() != 1 {
		t.Fatalf("Buckets = %d", m.Buckets())
	}
	th.Atomic(func(tx *stm.Tx) {
		for i := 0; i < 10; i++ {
			m.Insert(tx, fmt.Sprintf("k%d", i), i)
		}
	})
	th.Atomic(func(tx *stm.Tx) {
		if !m.Delete(tx, "k5") { // middle
			t.Error("middle delete failed")
		}
		if !m.Delete(tx, "k9") { // head (most recent insert)
			t.Error("head delete failed")
		}
		if !m.Delete(tx, "k0") { // tail
			t.Error("tail delete failed")
		}
		if m.Len(tx) != 7 {
			t.Errorf("Len = %d", m.Len(tx))
		}
		for i := 0; i < 10; i++ {
			want := i != 5 && i != 9 && i != 0
			if got := m.Contains(tx, fmt.Sprintf("k%d", i)); got != want {
				t.Errorf("Contains(k%d) = %v", i, got)
			}
		}
	})
}

// TestOracle mirrors random operations into a Go map.
func TestOracle(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	m := txhash.New[int](8)
	oracle := map[string]int{}
	r := rng.New(11)
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("key-%d", r.Intn(64))
		val := r.Intn(1000)
		switch r.Intn(4) {
		case 0:
			var got bool
			th.Atomic(func(tx *stm.Tx) { got = m.Insert(tx, key, val) })
			_, had := oracle[key]
			if got == had {
				t.Fatalf("op %d: Insert(%s)=%v, had=%v", i, key, got, had)
			}
			if !had {
				oracle[key] = val
			}
		case 1:
			th.Atomic(func(tx *stm.Tx) { m.Put(tx, key, val) })
			oracle[key] = val
		case 2:
			var got bool
			th.Atomic(func(tx *stm.Tx) { got = m.Delete(tx, key) })
			if _, had := oracle[key]; got != had {
				t.Fatalf("op %d: Delete(%s)=%v, had=%v", i, key, got, had)
			}
			delete(oracle, key)
		case 3:
			var got int
			var ok bool
			th.Atomic(func(tx *stm.Tx) { got, ok = m.Get(tx, key) })
			want, had := oracle[key]
			if ok != had || (had && got != want) {
				t.Fatalf("op %d: Get(%s)=%d,%v want %d,%v", i, key, got, ok, want, had)
			}
		}
	}
	keys := m.Keys()
	sort.Strings(keys)
	if len(keys) != len(oracle) {
		t.Fatalf("%d keys, oracle %d", len(keys), len(oracle))
	}
	for _, k := range keys {
		if _, ok := oracle[k]; !ok {
			t.Fatalf("stray key %s", k)
		}
	}
}

// TestQuickInsertAll: any batch of distinct keys is fully retrievable.
func TestQuickInsertAll(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	f := func(raw []uint16) bool {
		m := txhash.New[uint16](4)
		seen := map[string]uint16{}
		th.Atomic(func(tx *stm.Tx) {
			for _, v := range raw {
				k := fmt.Sprintf("%d", v%128)
				m.Put(tx, k, v)
				seen[k] = v
			}
		})
		ok := true
		th.Atomic(func(tx *stm.Tx) {
			ok = m.Len(tx) == len(seen)
			for k, want := range seen {
				if got, has := m.Get(tx, k); !has || got != want {
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentInsertDistinct: concurrent threads inserting disjoint key
// ranges all succeed.
func TestConcurrentInsertDistinct(t *testing.T) {
	const m, per = 8, 200
	rt := newRT(t, m)
	rt.SetYieldEvery(4)
	h := txhash.New[int](32)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(id int, th *stm.Thread) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				key := fmt.Sprintf("t%d-%d", id, j)
				ok := false
				th.Atomic(func(tx *stm.Tx) { ok = h.Insert(tx, key, j) })
				if !ok {
					t.Errorf("insert %s failed", key)
				}
			}
		}(i, rt.Thread(i))
	}
	wg.Wait()
	if got := len(h.Keys()); got != m*per {
		t.Errorf("%d keys, want %d", got, m*per)
	}
}

// TestConcurrentSameKeys: racing inserts of the same keys — exactly one
// winner per key, under a window manager.
func TestConcurrentSameKeys(t *testing.T) {
	const m, keys = 8, 100
	mgr, err := cm.New("online-dynamic", m)
	if err != nil {
		t.Fatal(err)
	}
	rt := stm.New(m, mgr)
	rt.SetYieldEvery(4)
	h := txhash.New[int](16)
	var wins [m]int
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(id int, th *stm.Thread) {
			defer wg.Done()
			for j := 0; j < keys; j++ {
				key := fmt.Sprintf("shared-%d", j)
				ok := false
				th.Atomic(func(tx *stm.Tx) { ok = h.Insert(tx, key, id) })
				if ok {
					wins[id]++
				}
			}
		}(i, rt.Thread(i))
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != keys {
		t.Errorf("%d insert wins, want exactly %d", total, keys)
	}
	if got := len(h.Keys()); got != keys {
		t.Errorf("%d keys, want %d", got, keys)
	}
}
