package txhash_test

import (
	"fmt"

	"wincm/internal/cm"
	"wincm/internal/stm"
	"wincm/internal/txhash"
)

// Example shows transactional map operations.
func Example() {
	rt := stm.New(1, cm.NewPolka())
	m := txhash.New[int](16)
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		m.Insert(tx, "acgt", 1)
		m.Put(tx, "acgt", 2)
		v, ok := m.Get(tx, "acgt")
		fmt.Println(v, ok, m.Len(tx))
	})
	// Output: 2 true 1
}
