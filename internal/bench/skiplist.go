package bench

import (
	"fmt"
	"math"
	"sync"

	"wincm/internal/rng"
	"wincm/internal/stm"
)

// skip-list geometry: p = 1/2 towers capped at maxLevel (enough for the
// key ranges the experiments use and then some).
const (
	slMaxLevel = 16
	slP        = 0.5
)

// slNode is an immutable skip-list node: key and tower height never
// change; each tower level is its own transactional pointer cell, so
// conflicts are per-level, matching the fine-grained object granularity of
// the DSTM skip-list benchmark.
type slNode struct {
	key  int
	next []*stm.TVar[*slNode] // len = tower height
}

func newSLNode(key, height int, init *slNode) *slNode {
	n := &slNode{key: key, next: make([]*stm.TVar[*slNode], height)}
	for i := range n.next {
		n.next[i] = stm.NewTVar(init)
	}
	return n
}

// SkipList is a transactional skip-list set. Relative to List its
// traversals touch O(log n) cells, so the conflict probability is far
// lower — the paper's low-contention benchmark.
type SkipList struct {
	head *slNode

	mu sync.Mutex
	r  *rng.Rand
}

var _ Set = (*SkipList)(nil)

// NewSkipList returns an empty skip list with a deterministic tower RNG.
func NewSkipList() *SkipList {
	tail := newSLNode(math.MaxInt, 0, nil) // no tower: links point at it
	return &SkipList{
		head: newSLNode(math.MinInt, slMaxLevel, tail),
		r:    rng.New(0x5ca1ab1e),
	}
}

// Name implements Set.
func (s *SkipList) Name() string { return "skiplist" }

// randomHeight draws a tower height in [1, slMaxLevel]. Tower heights are
// drawn outside transactions (they are not transactional state), so the
// generator needs its own lock.
func (s *SkipList) randomHeight() int {
	s.mu.Lock()
	h := 1 + s.r.GeometricLevel(slP, slMaxLevel-1)
	s.mu.Unlock()
	return h
}

// search fills preds/succs with the nodes around key at every level and
// returns the node at level 0 (which has key ≥ search key).
func (s *SkipList) search(tx *stm.Tx, key int, preds, succs []*slNode) *slNode {
	pred := s.head
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		cur := stm.Read(tx, pred.next[lvl])
		for cur.key < key {
			pred = cur
			cur = stm.Read(tx, cur.next[lvl])
		}
		if preds != nil {
			preds[lvl], succs[lvl] = pred, cur
		}
		if lvl == 0 {
			return cur
		}
	}
	return nil // unreachable: the loop returns at lvl == 0
}

// Insert implements Set.
func (s *SkipList) Insert(tx *stm.Tx, key int) bool {
	var preds, succs [slMaxLevel]*slNode
	cur := s.search(tx, key, preds[:], succs[:])
	if cur.key == key {
		return false
	}
	h := s.randomHeight()
	n := &slNode{key: key, next: make([]*stm.TVar[*slNode], h)}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = stm.NewTVar(succs[lvl])
	}
	for lvl := 0; lvl < h; lvl++ {
		stm.Write(tx, preds[lvl].next[lvl], n)
	}
	return true
}

// Remove implements Set.
func (s *SkipList) Remove(tx *stm.Tx, key int) bool {
	var preds, succs [slMaxLevel]*slNode
	cur := s.search(tx, key, preds[:], succs[:])
	if cur.key != key {
		return false
	}
	for lvl := 0; lvl < len(cur.next); lvl++ {
		stm.Write(tx, preds[lvl].next[lvl], stm.Read(tx, cur.next[lvl]))
	}
	return true
}

// Contains implements Set.
func (s *SkipList) Contains(tx *stm.Tx, key int) bool {
	cur := s.search(tx, key, nil, nil)
	return cur.key == key
}

// Keys implements Set (quiescent snapshot along level 0).
func (s *SkipList) Keys() []int {
	var ks []int
	for n := s.head.next[0].Peek(); n.key != math.MaxInt; n = n.next[0].Peek() {
		ks = append(ks, n.key)
	}
	return sortedUnique(ks)
}

// Validate checks the structural invariants in a quiescent state: keys
// strictly increase at every level, and each level's node set is a subset
// of the level below (tower property).
func (s *SkipList) Validate() error {
	below := map[int]bool{}
	for lvl := 0; lvl < slMaxLevel; lvl++ {
		prev := math.MinInt
		here := map[int]bool{}
		for n := s.head.next[lvl].Peek(); n.key != math.MaxInt; {
			if n.key <= prev {
				return fmt.Errorf("bench: skiplist level %d keys not increasing (%d after %d)", lvl, n.key, prev)
			}
			prev = n.key
			here[n.key] = true
			if lvl > 0 && !below[n.key] {
				return fmt.Errorf("bench: skiplist key %d on level %d missing from level %d", n.key, lvl, lvl-1)
			}
			if lvl >= len(n.next) {
				return fmt.Errorf("bench: skiplist key %d reached via level %d beyond its height %d", n.key, lvl, len(n.next))
			}
			n = n.next[lvl].Peek()
		}
		below = here
	}
	return nil
}
