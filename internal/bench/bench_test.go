package bench_test

import (
	"sync"
	"testing"
	"testing/quick"

	"wincm/internal/bench"
	"wincm/internal/cm"
	_ "wincm/internal/core" // registers the window-based managers
	"wincm/internal/rng"
	"wincm/internal/stm"
)

func newRT(t testing.TB, m int) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New("polka", m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr)
}

func TestNewSet(t *testing.T) {
	for _, name := range bench.SetNames() {
		s, err := bench.NewSet(name)
		if err != nil {
			t.Fatalf("NewSet(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("NewSet(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := bench.NewSet("bogus"); err == nil {
		t.Error("NewSet(bogus) succeeded")
	}
}

// TestSetOracle drives every set implementation with the same random
// operation sequence and checks each result against a map oracle.
func TestSetOracle(t *testing.T) {
	for _, name := range bench.SetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const ops, keyRange = 4000, 128
			rt := newRT(t, 1)
			th := rt.Thread(0)
			s, _ := bench.NewSet(name)
			oracle := map[int]bool{}
			r := rng.New(7)
			for i := 0; i < ops; i++ {
				key := r.Intn(keyRange)
				var got bool
				switch r.Intn(3) {
				case 0:
					th.Atomic(func(tx *stm.Tx) { got = s.Insert(tx, key) })
					if got == oracle[key] {
						t.Fatalf("op %d: Insert(%d) = %v, oracle has=%v", i, key, got, oracle[key])
					}
					oracle[key] = true
				case 1:
					th.Atomic(func(tx *stm.Tx) { got = s.Remove(tx, key) })
					if got != oracle[key] {
						t.Fatalf("op %d: Remove(%d) = %v, oracle has=%v", i, key, got, oracle[key])
					}
					delete(oracle, key)
				case 2:
					th.Atomic(func(tx *stm.Tx) { got = s.Contains(tx, key) })
					if got != oracle[key] {
						t.Fatalf("op %d: Contains(%d) = %v, oracle has=%v", i, key, got, oracle[key])
					}
				}
			}
			keys := s.Keys()
			if len(keys) != len(oracle) {
				t.Fatalf("Keys() has %d entries, oracle %d", len(keys), len(oracle))
			}
			for _, k := range keys {
				if !oracle[k] {
					t.Fatalf("Keys() includes %d, oracle does not", k)
				}
			}
		})
	}
}

// TestSetsAgree applies one random batch to all three sets and checks they
// end in identical states (property-based cross-implementation check).
func TestSetsAgree(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	f := func(raw []uint16) bool {
		sets := make([]bench.Set, 0, 3)
		for _, name := range bench.SetNames() {
			s, _ := bench.NewSet(name)
			sets = append(sets, s)
		}
		for _, w := range raw {
			key := int(w % 64)
			insert := w&0x8000 != 0
			for _, s := range sets {
				s := s
				th.Atomic(func(tx *stm.Tx) {
					if insert {
						s.Insert(tx, key)
					} else {
						s.Remove(tx, key)
					}
				})
			}
		}
		ref := sets[0].Keys()
		for _, s := range sets[1:] {
			ks := s.Keys()
			if len(ks) != len(ref) {
				return false
			}
			for i := range ks {
				if ks[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConcurrentSets runs a concurrent mixed workload on each set under a
// window manager and checks size conservation plus structure validity.
func TestConcurrentSets(t *testing.T) {
	for _, name := range bench.SetNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const m, perThread = 8, 250
			mgr, err := cm.New("online-dynamic", m)
			if err != nil {
				t.Fatal(err)
			}
			rt := stm.New(m, mgr)
			s, _ := bench.NewSet(name)
			var net [m]int // successful inserts − successful removes
			var wg sync.WaitGroup
			for i := 0; i < m; i++ {
				wg.Add(1)
				go func(id int, th *stm.Thread) {
					defer wg.Done()
					g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 96}, uint64(id))
					for j := 0; j < perThread; j++ {
						op := g.Next()
						var ok bool
						th.Atomic(func(tx *stm.Tx) { ok = bench.Apply(tx, s, op) })
						if ok {
							switch op.Kind {
							case bench.OpInsert:
								net[id]++
							case bench.OpRemove:
								net[id]--
							}
						}
					}
				}(i, rt.Thread(i))
			}
			wg.Wait()
			want := 0
			for _, n := range net {
				want += n
			}
			if got := len(s.Keys()); got != want {
				t.Errorf("final size %d, want %d", got, want)
			}
			if v, ok := s.(interface{ Validate() error }); ok {
				if err := v.Validate(); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestValidatorsCatchDamage: each structural validator detects a broken
// structure as well as accepting healthy ones.
func TestValidators(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	for _, name := range bench.SetNames() {
		s, _ := bench.NewSet(name)
		bench.Populate(th, s, 64, 256, 9)
		v, ok := s.(interface{ Validate() error })
		if !ok {
			t.Fatalf("%s has no validator", name)
		}
		if err := v.Validate(); err != nil {
			t.Errorf("%s: healthy structure rejected: %v", name, err)
		}
	}
}

func TestPopulate(t *testing.T) {
	rt := newRT(t, 1)
	for _, name := range bench.SetNames() {
		s, _ := bench.NewSet(name)
		n := bench.Populate(rt.Thread(0), s, 100, 1000, 3)
		if n != 100 {
			t.Errorf("%s: populated %d, want 100", name, n)
		}
		if got := len(s.Keys()); got != 100 {
			t.Errorf("%s: %d keys after populate", name, got)
		}
	}
}

func TestGenRespectUpdatePct(t *testing.T) {
	for _, pct := range []int{0, 20, 60, 100} {
		g := bench.NewGen(bench.Mix{UpdatePct: pct, KeyRange: 100}, 1)
		updates := 0
		const n = 10000
		for i := 0; i < n; i++ {
			if op := g.Next(); op.Kind != bench.OpContains {
				updates++
			}
			if op := g.Next(); op.Key < 0 || op.Key >= 100 {
				t.Fatalf("key %d out of range", op.Key)
			}
		}
		got := float64(updates) / n * 100
		if got < float64(pct)-3 || got > float64(pct)+3 {
			t.Errorf("UpdatePct %d: measured %.1f%%", pct, got)
		}
	}
}

func TestGenDefaultKeyRange(t *testing.T) {
	g := bench.NewGen(bench.Mix{UpdatePct: 50}, 1)
	for i := 0; i < 100; i++ {
		if op := g.Next(); op.Key < 0 || op.Key >= 256 {
			t.Fatalf("key %d outside default range", op.Key)
		}
	}
}

func TestMixPresets(t *testing.T) {
	if bench.LowContention.UpdatePct != 20 ||
		bench.MediumContention.UpdatePct != 60 ||
		bench.HighContention.UpdatePct != 100 {
		t.Error("contention presets do not match the paper's 20/60/100%")
	}
}
