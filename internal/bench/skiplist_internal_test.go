package bench

import (
	"testing"
)

// TestRandomHeightDistribution checks the tower generator: heights are in
// [1, slMaxLevel] and roughly geometric (mean ≈ 2 for p = 1/2).
func TestRandomHeightDistribution(t *testing.T) {
	s := NewSkipList()
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		h := s.randomHeight()
		if h < 1 || h > slMaxLevel {
			t.Fatalf("height %d out of range", h)
		}
		sum += h
	}
	mean := float64(sum) / n
	if mean < 1.85 || mean > 2.15 {
		t.Errorf("mean height = %v, want ≈ 2", mean)
	}
}

// TestHeadTowerFull: the head sentinel spans every level so searches can
// start at the top.
func TestHeadTowerFull(t *testing.T) {
	s := NewSkipList()
	if len(s.head.next) != slMaxLevel {
		t.Fatalf("head tower %d, want %d", len(s.head.next), slMaxLevel)
	}
	for lvl, cell := range s.head.next {
		if cell.Peek().key <= s.head.key {
			t.Errorf("level %d initial link not past head", lvl)
		}
	}
}
