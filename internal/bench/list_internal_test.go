package bench

import (
	"math"
	"testing"

	"wincm/internal/cm"
	"wincm/internal/stm"
)

// TestListSentinels: a fresh list is exactly head(−∞) → tail(+∞), and the
// validator accepts it.
func TestListSentinels(t *testing.T) {
	l := NewList()
	if l.head.key != math.MinInt {
		t.Error("head sentinel key wrong")
	}
	if tail := l.head.next.Peek(); tail.key != math.MaxInt {
		t.Error("tail sentinel key wrong")
	}
	if err := l.Validate(); err != nil {
		t.Error(err)
	}
	if got := l.Keys(); len(got) != 0 {
		t.Errorf("fresh list has keys %v", got)
	}
}

// TestListInsertLinksInOrder: inserts splice at the right position.
func TestListInsertLinksInOrder(t *testing.T) {
	l := NewList()
	rt := stm.New(1, cm.NewPolka())
	th := rt.Thread(0)
	for _, k := range []int{5, 1, 3, 9, 7} {
		th.Atomic(func(tx *stm.Tx) { l.Insert(tx, k) })
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5, 7, 9}
	got := l.Keys()
	if len(got) != len(want) {
		t.Fatalf("keys %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys %v, want %v", got, want)
		}
	}
}
