package bench

import (
	"fmt"

	"wincm/internal/stm"
)

// hsNode is an immutable chain cell (same pattern as listNode).
type hsNode struct {
	key  int
	next *stm.TVar[*hsNode]
}

// HashSet is a transactional chained hash set — the analogue of DSTM's
// IntSetHash benchmark. Operations touch one bucket chain, so read sets
// are tiny and conflicts rare: it sits between SkipList and the trivial
// counter in contention profile and rounds out the set benchmarks.
type HashSet struct {
	buckets []*stm.TVar[*hsNode]
}

var _ Set = (*HashSet)(nil)

// hashSetBuckets is sized so the default 256-key experiments keep chains
// short without making bucket collisions disappear entirely.
const hashSetBuckets = 64

// NewHashSet returns an empty hash set.
func NewHashSet() *HashSet {
	h := &HashSet{buckets: make([]*stm.TVar[*hsNode], hashSetBuckets)}
	for i := range h.buckets {
		h.buckets[i] = stm.NewTVar[*hsNode](nil)
	}
	return h
}

// Name implements Set.
func (h *HashSet) Name() string { return "hashset" }

// bucket returns the chain head for key (Fibonacci hashing so sequential
// keys spread).
func (h *HashSet) bucket(key int) *stm.TVar[*hsNode] {
	idx := (uint64(key) * 11400714819323198485) % uint64(len(h.buckets))
	return h.buckets[idx]
}

// Insert implements Set.
func (h *HashSet) Insert(tx *stm.Tx, key int) bool {
	head := h.bucket(key)
	for n := stm.Read(tx, head); n != nil; n = stm.Read(tx, n.next) {
		if n.key == key {
			return false
		}
	}
	first := stm.Read(tx, head)
	stm.Write(tx, head, &hsNode{key: key, next: stm.NewTVar(first)})
	return true
}

// Remove implements Set.
func (h *HashSet) Remove(tx *stm.Tx, key int) bool {
	prev := h.bucket(key)
	for {
		n := stm.Read(tx, prev)
		if n == nil {
			return false
		}
		if n.key == key {
			stm.Write(tx, prev, stm.Read(tx, n.next))
			return true
		}
		prev = n.next
	}
}

// Contains implements Set.
func (h *HashSet) Contains(tx *stm.Tx, key int) bool {
	for n := stm.Read(tx, h.bucket(key)); n != nil; n = stm.Read(tx, n.next) {
		if n.key == key {
			return true
		}
	}
	return false
}

// Keys implements Set (quiescent snapshot).
func (h *HashSet) Keys() []int {
	var ks []int
	for _, b := range h.buckets {
		for n := b.Peek(); n != nil; n = n.next.Peek() {
			ks = append(ks, n.key)
		}
	}
	return sortedUnique(ks)
}

// Validate checks the structural invariant in a quiescent state: every
// key sits in the bucket its hash selects and chains hold no duplicates.
func (h *HashSet) Validate() error {
	seen := map[int]bool{}
	for i, b := range h.buckets {
		for n := b.Peek(); n != nil; n = n.next.Peek() {
			if h.bucket(n.key) != h.buckets[i] {
				return fmt.Errorf("bench: hashset key %d in wrong bucket %d", n.key, i)
			}
			if seen[n.key] {
				return fmt.Errorf("bench: hashset key %d duplicated", n.key)
			}
			seen[n.key] = true
		}
	}
	return nil
}
