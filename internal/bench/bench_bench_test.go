package bench_test

import (
	"testing"

	"wincm/internal/bench"
	"wincm/internal/stm"
)

// BenchmarkSetOps measures single-threaded operation cost on each set at
// half occupancy of a 256-key range — the figure experiments' baseline
// transaction duration τ.
func BenchmarkSetOps(b *testing.B) {
	for _, name := range bench.SetNames() {
		b.Run(name, func(b *testing.B) {
			rt := newRT(b, 1)
			th := rt.Thread(0)
			s, _ := bench.NewSet(name)
			bench.Populate(th, s, 128, 256, 1)
			g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 256}, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		})
	}
}

// BenchmarkSetLookup measures pure lookups (no write acquisition).
func BenchmarkSetLookup(b *testing.B) {
	for _, name := range bench.SetNames() {
		b.Run(name, func(b *testing.B) {
			rt := newRT(b, 1)
			th := rt.Thread(0)
			s, _ := bench.NewSet(name)
			bench.Populate(th, s, 128, 256, 1)
			g := bench.NewGen(bench.Mix{UpdatePct: 0, KeyRange: 256}, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		})
	}
}
