package bench_test

import (
	"sync"
	"testing"

	"wincm/internal/bench"
	"wincm/internal/stm"
)

// BenchmarkSetOps measures single-threaded operation cost on each set at
// half occupancy of a 256-key range — the figure experiments' baseline
// transaction duration τ.
func BenchmarkSetOps(b *testing.B) {
	for _, name := range bench.SetNames() {
		b.Run(name, func(b *testing.B) {
			rt := newRT(b, 1)
			th := rt.Thread(0)
			s, _ := bench.NewSet(name)
			bench.Populate(th, s, 128, 256, 1)
			g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 256}, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		})
	}
}

// BenchmarkSetLookup measures pure lookups (no write acquisition).
func BenchmarkSetLookup(b *testing.B) {
	for _, name := range bench.SetNames() {
		b.Run(name, func(b *testing.B) {
			rt := newRT(b, 1)
			th := rt.Thread(0)
			s, _ := bench.NewSet(name)
			bench.Populate(th, s, 128, 256, 1)
			g := bench.NewGen(bench.Mix{UpdatePct: 0, KeyRange: 256}, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		})
	}
}

// runListParallel drives the sorted-list set from 16 goroutines at the
// paper's 100%-update mix, telemetry off. One op is one committed
// transaction.
func runListParallel(b *testing.B, yieldEvery int) {
	const threads = 16
	rt := newRT(b, threads)
	rt.SetYieldEvery(yieldEvery)
	s := bench.NewList()
	bench.Populate(rt.Thread(0), s, 128, 256, 1)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		quota := b.N / threads
		if i < b.N%threads {
			quota++
		}
		wg.Add(1)
		go func(id, quota int, th *stm.Thread) {
			defer wg.Done()
			g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 256}, uint64(id)*7919+1)
			for n := 0; n < quota; n++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		}(i, quota, rt.Thread(i))
	}
	wg.Wait()
}

// BenchmarkListParallel is the ISSUE 3 headline benchmark: 16 goroutines,
// natural scheduling. It measures the runtime's conflict-detection and
// bookkeeping overhead under concurrency — the axis the lock-free refactor
// targets. The checked-in CI baseline (bench_baseline.txt) tracks this
// cell; the refactor's 2× target is measured here.
func BenchmarkListParallel(b *testing.B) { runListParallel(b, 0) }

// BenchmarkListParallelInterleaved is the same workload with the runtime's
// interleaving knob forcing a yield every 8 opens, recreating fine-grained
// transaction overlap (and hence heavy contention-manager traffic) on
// machines with fewer cores than threads. Most of its time is scheduler
// quanta and contention-manager waits that both the old and new runtime
// pay identically; it is tracked to catch contention-dynamics regressions,
// not raw hot-path speed.
func BenchmarkListParallelInterleaved(b *testing.B) { runListParallel(b, 8) }

// BenchmarkReadOnlyCommitted measures the committed read-only transaction
// path — the path ISSUE 3 requires to run allocation-free. Run with
// -benchmem; allocs/op must be 0.
func BenchmarkReadOnlyCommitted(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	s := bench.NewList()
	bench.Populate(th, s, 128, 256, 1)
	g := bench.NewGen(bench.Mix{UpdatePct: 0, KeyRange: 256}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := g.Next()
		th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
	}
}
