package bench_test

import (
	"sync"
	"testing"

	"wincm/internal/bench"
	"wincm/internal/cm"
	"wincm/internal/rng"
	"wincm/internal/stm"
)

// Lazy-backend counterparts of the tracked hot-path cells
// (bench_baseline.txt / make bench-check): the TL2-style engine must hold
// the same allocation discipline as the eager runtime — zero on the
// committed read and write paths — and its parallel throughput is tracked
// so commit-time validation cost regressions surface in CI.

func newLazyRT(t testing.TB, m int) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New("polka", m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr, stm.WithLazyBackend())
}

// BenchmarkLazyCommittedRead measures the committed read-only transaction
// path on the lazy engine: invisible reads logged against the version
// clock, no commit-time work (read-only attempts skip acquisition,
// tick and validation). Run with -benchmem; allocs/op must be 0.
func BenchmarkLazyCommittedRead(b *testing.B) {
	rt := newLazyRT(b, 1)
	th := rt.Thread(0)
	s := bench.NewList()
	bench.Populate(th, s, 128, 256, 1)
	g := bench.NewGen(bench.Mix{UpdatePct: 0, KeyRange: 256}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := g.Next()
		th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
	}
}

// BenchmarkLazyCommittedWrite measures the uncontended committed write
// path on the lazy engine: buffer four writes, then acquire → tick →
// validate → write back at commit. With the entry and locator pools warm
// this path must report 0 allocs/op (CI asserts it).
func BenchmarkLazyCommittedWrite(b *testing.B) {
	rt := newLazyRT(b, 1)
	th := rt.Thread(0)
	var vs [4]*stm.TVar[int]
	for i := range vs {
		vs[i] = stm.NewTVar(0)
	}
	// Warm up: fill the write-set entry pool and push the locator free
	// list past its first grace period so the steady state is measured.
	for i := 0; i < 200; i++ {
		th.Atomic(func(tx *stm.Tx) {
			for _, v := range vs {
				stm.Write(tx, v, i)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(tx *stm.Tx) {
			for _, v := range vs {
				stm.Write(tx, v, i)
			}
		})
	}
}

// BenchmarkLazyListParallel is BenchmarkListParallel on the lazy engine:
// the sorted-list set from 16 goroutines at the paper's 100%-update mix.
// Long traversals are where commit-time validation pays its O(read-set)
// price, so this cell tracks the engines' contention trade-off.
func BenchmarkLazyListParallel(b *testing.B) {
	const threads = 16
	rt := newLazyRT(b, threads)
	s := bench.NewList()
	bench.Populate(rt.Thread(0), s, 128, 256, 1)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		quota := b.N / threads
		if i < b.N%threads {
			quota++
		}
		wg.Add(1)
		go func(id, quota int, th *stm.Thread) {
			defer wg.Done()
			g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 256}, uint64(id)*7919+1)
			for n := 0; n < quota; n++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		}(i, quota, rt.Thread(i))
	}
	wg.Wait()
}

// TestLazyBenchOracle keeps the lazy cells honest: the same generator
// stream applied transactionally on the lazy engine and against a map
// oracle must agree — a cheap end-to-end check that the benchmarks
// measure a correct engine, not a fast wrong one.
func TestLazyBenchOracle(t *testing.T) {
	rt := newLazyRT(t, 1)
	th := rt.Thread(0)
	s := bench.NewList()
	oracle := map[int]bool{}
	r := rng.New(11)
	for i := 0; i < 2000; i++ {
		key := r.Intn(128)
		var got bool
		switch r.Intn(3) {
		case 0:
			th.Atomic(func(tx *stm.Tx) { got = s.Insert(tx, key) })
			if got == oracle[key] {
				t.Fatalf("op %d: Insert(%d) = %v, oracle has=%v", i, key, got, oracle[key])
			}
			oracle[key] = true
		case 1:
			th.Atomic(func(tx *stm.Tx) { got = s.Remove(tx, key) })
			if got != oracle[key] {
				t.Fatalf("op %d: Remove(%d) = %v, oracle has=%v", i, key, got, oracle[key])
			}
			delete(oracle, key)
		default:
			th.Atomic(func(tx *stm.Tx) { got = s.Contains(tx, key) })
			if got != oracle[key] {
				t.Fatalf("op %d: Contains(%d) = %v, oracle has=%v", i, key, got, oracle[key])
			}
		}
	}
}
