package bench_test

import (
	"fmt"
	"testing"

	"wincm/internal/stm"
	"wincm/internal/txbtree"
)

// B-link tree benchmark cells (ISSUE 9): the semantic-conflict tree's
// two headline numbers — an allocation-free steady-state lookup and the
// parallel update throughput that key-granularity conflict detection is
// supposed to buy over the tvar-granularity rbtree. The M8/M16 variants
// are gated in CI via bench_baseline.txt alongside RBTreeParallel.

// BenchmarkTxBTreeLookup measures the uncontended transactional lookup:
// traverse to the leaf, log one key read, validate one leaf version at
// commit. Run with -benchmem; with the read/write-set scratch warm this
// path must report 0 allocs/op (the tentpole criterion; CI asserts it).
func BenchmarkTxBTreeLookup(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	tr := txbtree.New[int]()
	const keys = 1024
	for k := 0; k < keys; k++ {
		th.Atomic(func(tx *stm.Tx) { tr.Insert(tx, k, k) })
	}
	// Warm up past the per-thread scratch ramp so the steady state is
	// measured, not slice growth.
	for i := 0; i < 200; i++ {
		th.Atomic(func(tx *stm.Tx) { tr.Get(tx, i%keys) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(tx *stm.Tx) { tr.Get(tx, (i*7919+13)%keys) })
	}
}

// BenchmarkTxBTreeParallel is the rbtree benchmark's workload pointed at
// the B-link tree: the same 100%-update mix, key range and populate as
// BenchmarkRBTreeParallel, so the two cells differ only in conflict
// granularity.
func BenchmarkTxBTreeParallel(b *testing.B) {
	for _, m := range []int{8, 16} {
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			runSetParallel(b, "btree", m)
		})
	}
}
