// Package bench implements the paper's micro-benchmarks — sorted linked
// list (List), red-black tree (RBTree) and skip list (SkipList) — as
// transactional integer sets over the STM, plus the operation-mix workload
// machinery the experiments share. The Vacation benchmark lives in
// wincm/internal/vacation.
package bench

import (
	"fmt"
	"sort"

	"wincm/internal/rng"
	"wincm/internal/stm"
)

// Set is a transactional integer set; every benchmark implements it.
type Set interface {
	// Insert adds key, reporting whether it was absent.
	Insert(tx *stm.Tx, key int) bool
	// Remove deletes key, reporting whether it was present.
	Remove(tx *stm.Tx, key int) bool
	// Contains reports whether key is present.
	Contains(tx *stm.Tx, key int) bool
	// Keys returns a sorted snapshot, read non-transactionally; call it
	// only while no transactions run (tests and verification).
	Keys() []int
	// Name identifies the benchmark ("list", "rbtree", "skiplist").
	Name() string
}

// NewSet builds the named set benchmark. Valid names are "list",
// "rbtree", "skiplist", "hashset" and "btree".
func NewSet(name string) (Set, error) {
	switch name {
	case "list":
		return NewList(), nil
	case "rbtree":
		return NewRBTree(), nil
	case "skiplist":
		return NewSkipList(), nil
	case "hashset":
		return NewHashSet(), nil
	case "btree":
		return NewBTree(), nil
	default:
		return nil, fmt.Errorf("bench: unknown set benchmark %q", name)
	}
}

// SetNames lists the set benchmarks in presentation order: the paper's
// three, the IntSetHash-style hash set, and the semantically-validated
// B-link tree.
func SetNames() []string { return []string{"list", "rbtree", "skiplist", "hashset", "btree"} }

// Populate inserts size distinct random keys from [0, keyRange) using
// thread th, bringing the structure to the experiments' steady-state
// initial occupancy. It returns the number inserted.
func Populate(th *stm.Thread, s Set, size, keyRange int, seed uint64) int {
	r := rng.New(seed)
	inserted := 0
	for attempts := 0; inserted < size && attempts < 20*size; attempts++ {
		key := r.Intn(keyRange)
		th.Atomic(func(tx *stm.Tx) {
			if s.Insert(tx, key) {
				inserted++
			}
		})
	}
	return inserted
}

// OpKind is one set operation drawn from a Mix.
type OpKind int

const (
	// OpInsert adds a key.
	OpInsert OpKind = iota
	// OpRemove removes a key.
	OpRemove
	// OpContains looks a key up without updating.
	OpContains
)

// Mix describes an operation mix: UpdatePct percent of operations are
// updates (split evenly between inserts and removes, as in the DSTM
// benchmarks), the rest are lookups. KeyRange is the key universe; a
// smaller range yields more conflicts.
type Mix struct {
	UpdatePct int
	KeyRange  int
}

// Paper contention scenarios (Section III-D): low = 20% updates,
// medium = 60%, high = 100%.
var (
	LowContention    = Mix{UpdatePct: 20, KeyRange: 256}
	MediumContention = Mix{UpdatePct: 60, KeyRange: 256}
	HighContention   = Mix{UpdatePct: 100, KeyRange: 256}
)

// Op is one concrete operation.
type Op struct {
	Kind OpKind
	Key  int
}

// Gen draws operations from a Mix deterministically.
type Gen struct {
	mix Mix
	r   *rng.Rand
}

// NewGen returns a generator for mix seeded with seed.
func NewGen(mix Mix, seed uint64) *Gen {
	if mix.KeyRange <= 0 {
		mix.KeyRange = 256
	}
	return &Gen{mix: mix, r: rng.New(seed)}
}

// Next draws the next operation.
func (g *Gen) Next() Op {
	op := Op{Key: g.r.Intn(g.mix.KeyRange)}
	if g.r.Intn(100) < g.mix.UpdatePct {
		if g.r.Bool(0.5) {
			op.Kind = OpInsert
		} else {
			op.Kind = OpRemove
		}
	} else {
		op.Kind = OpContains
	}
	return op
}

// Apply runs op against s inside tx and reports the operation's result.
func Apply(tx *stm.Tx, s Set, op Op) bool {
	switch op.Kind {
	case OpInsert:
		return s.Insert(tx, op.Key)
	case OpRemove:
		return s.Remove(tx, op.Key)
	default:
		return s.Contains(tx, op.Key)
	}
}

// sortedUnique sorts ks and removes duplicates (helper for Keys).
func sortedUnique(ks []int) []int {
	sort.Ints(ks)
	out := ks[:0]
	for i, k := range ks {
		if i == 0 || k != ks[i-1] {
			out = append(out, k)
		}
	}
	return out
}
