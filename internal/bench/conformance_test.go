package bench_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"wincm/internal/cm"
	"wincm/internal/rng"
	"wincm/internal/stm"
	"wincm/internal/txbtree"
	"wincm/internal/txmap"
)

// omap is the common face of the two transactional ordered maps, used by
// the conformance suite to drive them through identical operation
// streams. rangeKeys collects the keys in [lo, hi) in ascending order.
type omap interface {
	name() string
	get(tx *stm.Tx, key int) (int, bool)
	insert(tx *stm.Tx, key, val int) bool
	delete(tx *stm.Tx, key int) bool
	rangeKeys(tx *stm.Tx, lo, hi int, out *[]int)
	keys() []int
}

type rbAdapter struct{ t *txmap.Tree[int] }

func (a rbAdapter) name() string                      { return "txmap" }
func (a rbAdapter) get(tx *stm.Tx, k int) (int, bool) { return a.t.Get(tx, k) }

// insert upserts: txmap.Insert leaves an existing binding untouched
// (set semantics), while the suite — like txbtree.Insert — speaks upsert,
// so a present key routes through Update.
func (a rbAdapter) insert(tx *stm.Tx, k, v int) bool {
	if a.t.Insert(tx, k, v) {
		return true
	}
	a.t.Update(tx, k, v)
	return false
}
func (a rbAdapter) delete(tx *stm.Tx, k int) bool { return a.t.Delete(tx, k) }
func (a rbAdapter) rangeKeys(tx *stm.Tx, lo, hi int, out *[]int) {
	// txmap.Range is inclusive of hi; the suite speaks half-open [lo, hi).
	a.t.Range(tx, lo, hi-1, func(k, v int) bool { *out = append(*out, k); return true })
}
func (a rbAdapter) keys() []int {
	snap := a.t.Snapshot()
	ks := make([]int, len(snap))
	for i, kv := range snap {
		ks[i] = kv.Key
	}
	return ks
}

type btAdapter struct{ t *txbtree.Tree[int] }

func (a btAdapter) name() string                      { return "txbtree" }
func (a btAdapter) get(tx *stm.Tx, k int) (int, bool) { return a.t.Get(tx, k) }
func (a btAdapter) insert(tx *stm.Tx, k, v int) bool  { return a.t.Insert(tx, k, v) }
func (a btAdapter) delete(tx *stm.Tx, k int) bool     { return a.t.Delete(tx, k) }
func (a btAdapter) rangeKeys(tx *stm.Tx, lo, hi int, out *[]int) {
	a.t.Scan(tx, lo, hi, func(k, v int) bool { *out = append(*out, k); return true })
}
func (a btAdapter) keys() []int { return a.t.Keys() }

func confRT(t testing.TB, m int, opts ...stm.Option) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New("polka", m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr, opts...)
}

func confBackends(t *testing.T, fn func(t *testing.T, opts ...stm.Option)) {
	t.Run("eager", func(t *testing.T) { fn(t) })
	t.Run("lazy", func(t *testing.T) { fn(t, stm.WithLazyBackend()) })
}

// TestOrderedMapConformance drives each transactional ordered map through
// a randomized single-thread operation stream — insert, delete, lookup,
// range — and checks every result against a plain map+sort reference
// model, on both engines.
func TestOrderedMapConformance(t *testing.T) {
	confBackends(t, func(t *testing.T, opts ...stm.Option) {
		maps := []omap{
			rbAdapter{t: txmap.New[int]()},
			btAdapter{t: txbtree.New[int]()},
		}
		for _, m := range maps {
			t.Run(m.name(), func(t *testing.T) {
				rt := confRT(t, 1, opts...)
				th := rt.Thread(0)
				ref := map[int]int{}
				r := rng.New(0xC04F04)
				const (
					ops      = 6000
					keyRange = 512
				)
				var got []int
				for i := 0; i < ops; i++ {
					k := r.Intn(keyRange)
					switch r.Intn(8) {
					case 0, 1, 2: // insert
						var wasAbsent bool
						th.Atomic(func(tx *stm.Tx) {
							wasAbsent = m.insert(tx, k, i)
						})
						_, had := ref[k]
						if wasAbsent == had {
							t.Fatalf("%s: Insert(%d) absent=%v, model had=%v", m.name(), k, wasAbsent, had)
						}
						ref[k] = i
					case 3, 4: // delete
						var wasPresent bool
						th.Atomic(func(tx *stm.Tx) {
							wasPresent = m.delete(tx, k)
						})
						if _, had := ref[k]; wasPresent != had {
							t.Fatalf("%s: Delete(%d) present=%v, model had=%v", m.name(), k, wasPresent, had)
						}
						delete(ref, k)
					case 5, 6: // lookup
						var v int
						var ok bool
						th.Atomic(func(tx *stm.Tx) {
							v, ok = m.get(tx, k)
						})
						want, had := ref[k]
						if ok != had || (ok && v != want) {
							t.Fatalf("%s: Get(%d) = %d,%v, model %d,%v", m.name(), k, v, ok, want, had)
						}
					default: // range
						lo := k
						hi := lo + 1 + r.Intn(64)
						got = got[:0]
						th.Atomic(func(tx *stm.Tx) {
							got = got[:0]
							m.rangeKeys(tx, lo, hi, &got)
						})
						var want []int
						for rk := range ref {
							if rk >= lo && rk < hi {
								want = append(want, rk)
							}
						}
						sort.Ints(want)
						if len(got) != len(want) {
							t.Fatalf("%s: range[%d,%d) = %v, model %v", m.name(), lo, hi, got, want)
						}
						for j := range want {
							if got[j] != want[j] {
								t.Fatalf("%s: range[%d,%d) = %v, model %v", m.name(), lo, hi, got, want)
							}
						}
					}
				}
				final := m.keys()
				if len(final) != len(ref) {
					t.Fatalf("%s: final size %d, model %d", m.name(), len(final), len(ref))
				}
				for _, k := range final {
					if _, ok := ref[k]; !ok {
						t.Fatalf("%s: final state holds key %d the model lacks", m.name(), k)
					}
				}
			})
		}
	})
}

// TestOrderedMapConformanceConcurrent is the cross-structure check under
// real contention: every transaction applies the same operation to BOTH
// ordered maps, so the serialized commit order is shared and the two
// structures must agree operation by operation — the tvar-granularity
// red-black tree and the key-granularity B-link tree each acting as the
// other's reference model. Final key sets must be identical.
func TestOrderedMapConformanceConcurrent(t *testing.T) {
	confBackends(t, func(t *testing.T, opts ...stm.Option) {
		const (
			m        = 6
			perThr   = 500
			keyRange = 128
		)
		rt := confRT(t, m, opts...)
		rt.SetYieldEvery(2)
		rb := rbAdapter{t: txmap.New[int]()}
		bt := btAdapter{t: txbtree.New[int]()}
		var (
			wg       sync.WaitGroup
			mismatch sync.Once
			failMsg  string
		)
		for id := 0; id < m; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				th := rt.Thread(id)
				r := rng.New(uint64(id)*991 + 7)
				var rks, bks []int
				for i := 0; i < perThr; i++ {
					k := r.Intn(keyRange)
					op := r.Intn(8)
					lo := r.Intn(keyRange)
					hi := lo + 1 + r.Intn(32)
					var disagree string
					th.Atomic(func(tx *stm.Tx) {
						disagree = ""
						switch op {
						case 0, 1, 2:
							ra, ba := rb.insert(tx, k, i), bt.insert(tx, k, i)
							if ra != ba {
								disagree = fmt.Sprintf("Insert(%d): txmap absent=%v, txbtree absent=%v", k, ra, ba)
							}
						case 3, 4:
							ra, ba := rb.delete(tx, k), bt.delete(tx, k)
							if ra != ba {
								disagree = fmt.Sprintf("Delete(%d): txmap present=%v, txbtree present=%v", k, ra, ba)
							}
						case 5, 6:
							rv, rok := rb.get(tx, k)
							bv, bok := bt.get(tx, k)
							if rok != bok || (rok && rv != bv) {
								disagree = fmt.Sprintf("Get(%d): txmap %d,%v txbtree %d,%v", k, rv, rok, bv, bok)
							}
						default:
							rks, bks = rks[:0], bks[:0]
							rb.rangeKeys(tx, lo, hi, &rks)
							bt.rangeKeys(tx, lo, hi, &bks)
							if len(rks) != len(bks) {
								disagree = fmt.Sprintf("range[%d,%d): txmap %v, txbtree %v", lo, hi, rks, bks)
							} else {
								for j := range rks {
									if rks[j] != bks[j] {
										disagree = fmt.Sprintf("range[%d,%d): txmap %v, txbtree %v", lo, hi, rks, bks)
										break
									}
								}
							}
						}
					})
					if disagree != "" {
						var after string
						th.Atomic(func(tx *stm.Tx) {
							rv, rok := rb.get(tx, k)
							bv, bok := bt.get(tx, k)
							rks, bks = rks[:0], bks[:0]
							rb.rangeKeys(tx, lo, hi, &rks)
							bt.rangeKeys(tx, lo, hi, &bks)
							after = fmt.Sprintf("re-read: txmap %d,%v txbtree %d,%v; re-range[%d,%d): txmap %v txbtree %v",
								rv, rok, bv, bok, lo, hi, rks, bks)
						})
						mismatch.Do(func() {
							failMsg = "txmap and txbtree disagreed inside one transaction: " + disagree + "; " + after
						})
						return
					}
				}
			}(id)
		}
		wg.Wait()
		if failMsg != "" {
			t.Fatal(failMsg)
		}
		rk, bk := rb.keys(), bt.keys()
		if len(rk) != len(bk) {
			t.Fatalf("final key sets differ: txmap %d keys, txbtree %d keys", len(rk), len(bk))
		}
		for i := range rk {
			if rk[i] != bk[i] {
				t.Fatalf("final key sets diverge at index %d: txmap %d, txbtree %d", i, rk[i], bk[i])
			}
		}
		if err := bt.t.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := rb.t.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
