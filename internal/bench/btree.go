package bench

import (
	"wincm/internal/stm"
	"wincm/internal/txbtree"
)

// BTree is the B-link tree set benchmark, a thin Set adapter over the
// semantically-validated transactional tree in wincm/internal/txbtree.
// Unlike the rbtree adapter, its conflicts are detected at key
// granularity and its structural modifications never enter a conflict
// set (see DESIGN.md §14).
type BTree struct {
	t *txbtree.Tree[struct{}]
}

var _ Set = (*BTree)(nil)

// NewBTree returns an empty B-link tree set.
func NewBTree() *BTree { return &BTree{t: txbtree.New[struct{}]()} }

// Name implements Set.
func (b *BTree) Name() string { return "btree" }

// Insert implements Set.
func (b *BTree) Insert(tx *stm.Tx, key int) bool {
	return b.t.Insert(tx, key, struct{}{})
}

// Remove implements Set.
func (b *BTree) Remove(tx *stm.Tx, key int) bool {
	return b.t.Delete(tx, key)
}

// Contains implements Set.
func (b *BTree) Contains(tx *stm.Tx, key int) bool {
	return b.t.Contains(tx, key)
}

// Keys implements Set (quiescent snapshot).
func (b *BTree) Keys() []int { return b.t.Keys() }

// Validate checks the underlying tree's B-link invariants (quiescent
// state only); the harness calls it after verification runs.
func (b *BTree) Validate() error { return b.t.CheckInvariants() }
