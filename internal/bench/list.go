package bench

import (
	"fmt"
	"math"

	"wincm/internal/stm"
)

// listNode is an immutable list cell: the key never changes and next is a
// transactional pointer cell. Head and tail sentinels carry ±∞ keys so the
// traversal needs no nil checks — the structure of the DSTM IntSet
// benchmark, the paper's List.
type listNode struct {
	key  int
	next *stm.TVar[*listNode]
}

// List is a transactional sorted linked list set. Every traversal reads —
// and, with visible reads, registers on — each hop's next cell, which is
// what makes List the paper's highest-contention benchmark: any insert or
// remove near the front conflicts with every concurrent traversal that
// passed it.
type List struct {
	head *listNode
}

var _ Set = (*List)(nil)

// NewList returns an empty list.
func NewList() *List {
	tail := &listNode{key: math.MaxInt}
	return &List{head: &listNode{key: math.MinInt, next: stm.NewTVar(tail)}}
}

// Name implements Set.
func (l *List) Name() string { return "list" }

// search returns the first node with key ≥ k and its predecessor.
func (l *List) search(tx *stm.Tx, k int) (prev, cur *listNode) {
	prev = l.head
	cur = stm.Read(tx, prev.next)
	for cur.key < k {
		prev = cur
		cur = stm.Read(tx, cur.next)
	}
	return prev, cur
}

// Insert implements Set.
func (l *List) Insert(tx *stm.Tx, key int) bool {
	prev, cur := l.search(tx, key)
	if cur.key == key {
		return false
	}
	n := &listNode{key: key, next: stm.NewTVar(cur)}
	stm.Write(tx, prev.next, n)
	return true
}

// Remove implements Set.
func (l *List) Remove(tx *stm.Tx, key int) bool {
	prev, cur := l.search(tx, key)
	if cur.key != key {
		return false
	}
	stm.Write(tx, prev.next, stm.Read(tx, cur.next))
	return true
}

// Contains implements Set.
func (l *List) Contains(tx *stm.Tx, key int) bool {
	_, cur := l.search(tx, key)
	return cur.key == key
}

// Keys implements Set (quiescent snapshot).
func (l *List) Keys() []int {
	var ks []int
	for n := l.head.next.Peek(); n.key != math.MaxInt; n = n.next.Peek() {
		ks = append(ks, n.key)
	}
	return sortedUnique(ks)
}

// Validate checks the structural invariant in a quiescent state: keys
// strictly increase from the head sentinel to the tail sentinel.
func (l *List) Validate() error {
	prev := l.head.key
	for n := l.head.next.Peek(); ; n = n.next.Peek() {
		if n.key <= prev {
			return fmt.Errorf("bench: list keys not strictly increasing (%d after %d)", n.key, prev)
		}
		if n.key == math.MaxInt {
			return nil
		}
		prev = n.key
	}
}
