package bench_test

import (
	"fmt"
	"sync"
	"testing"

	"wincm/internal/bench"
	"wincm/internal/rng"
	"wincm/internal/stm"
	"wincm/internal/vacation"
)

// Write-heavy benchmark cells (ISSUE 5): the paper's update-dominated
// workloads — RBTree fixups and Vacation reservations — are where the
// write path's per-operation locator allocation used to dominate. These
// cells track the pooled (epoch-reclaimed) write path; the M16 variants
// are gated in CI via bench_baseline.txt.

// runSetParallel drives the named set from `threads` goroutines at the
// paper's 100%-update mix, natural scheduling. One op is one committed
// transaction.
func runSetParallel(b *testing.B, name string, threads int) {
	rt := newRT(b, threads)
	s, err := bench.NewSet(name)
	if err != nil {
		b.Fatal(err)
	}
	bench.Populate(rt.Thread(0), s, 128, 256, 1)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		quota := b.N / threads
		if i < b.N%threads {
			quota++
		}
		wg.Add(1)
		go func(id, quota int, th *stm.Thread) {
			defer wg.Done()
			g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 256}, uint64(id)*7919+1)
			for n := 0; n < quota; n++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		}(i, quota, rt.Thread(i))
	}
	wg.Wait()
}

// BenchmarkRBTreeParallel is the paper's RBTree benchmark at 100%
// updates: inserts and deletes whose fixup chains make it the most
// write-acquisition-heavy of the set workloads.
func BenchmarkRBTreeParallel(b *testing.B) {
	for _, m := range []int{8, 16} {
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			runSetParallel(b, "rbtree", m)
		})
	}
}

// BenchmarkVacationParallel is the STAMP Vacation slice at the medium
// contention scenario: reservation transactions with multi-table
// read/write sets.
func BenchmarkVacationParallel(b *testing.B) {
	for _, m := range []int{8, 16} {
		b.Run(fmt.Sprintf("M%d", m), func(b *testing.B) {
			rt := newRT(b, m)
			cfg, err := vacation.Scenario("medium")
			if err != nil {
				b.Fatal(err)
			}
			v := vacation.New(cfg)
			v.Setup(rt.Thread(0))
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := 0; i < m; i++ {
				quota := b.N / m
				if i < b.N%m {
					quota++
				}
				wg.Add(1)
				go func(id, quota int, th *stm.Thread) {
					defer wg.Done()
					c := v.NewClient(uint64(id)*2654435761 + 1)
					for n := 0; n < quota; n++ {
						c.Do(th)
					}
				}(i, quota, rt.Thread(i))
			}
			wg.Wait()
			b.StopTimer()
			if err := v.Verify(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWriteHeavyParallel measures the pure write-acquisition path
// under concurrency: 16 goroutines, each transaction blind-writing 4 of
// 64 variables. There are no transactional reads, so every open is an
// ownership acquisition — the path the locator pool must keep
// allocation-free.
func BenchmarkWriteHeavyParallel(b *testing.B) {
	const threads, vars, writesPerTx = 16, 64, 4
	rt := newRT(b, threads)
	vs := make([]*stm.TVar[int], vars)
	for i := range vs {
		vs[i] = stm.NewTVar(i)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		quota := b.N / threads
		if i < b.N%threads {
			quota++
		}
		wg.Add(1)
		go func(id, quota int, th *stm.Thread) {
			defer wg.Done()
			r := rng.New(uint64(id)*7919 + 3)
			for n := 0; n < quota; n++ {
				th.Atomic(func(tx *stm.Tx) {
					for k := 0; k < writesPerTx; k++ {
						stm.Write(tx, vs[r.Intn(vars)], n)
					}
				})
			}
		}(i, quota, rt.Thread(i))
	}
	wg.Wait()
}

// BenchmarkCommittedWrite measures the committed write path with no
// contention: acquire → commit → release on four variables per
// transaction. Run with -benchmem; with the locator pool warm this path
// must report 0 allocs/op (the ISSUE 5 criterion; CI asserts it).
func BenchmarkCommittedWrite(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	var vs [4]*stm.TVar[int]
	for i := range vs {
		vs[i] = stm.NewTVar(0)
	}
	// Warm up: fill the per-thread locator free list past its first
	// grace period so the steady state is measured, not pool ramp-up.
	for i := 0; i < 200; i++ {
		th.Atomic(func(tx *stm.Tx) {
			for _, v := range vs {
				stm.Write(tx, v, i)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(tx *stm.Tx) {
			for _, v := range vs {
				stm.Write(tx, v, i)
			}
		})
	}
}
