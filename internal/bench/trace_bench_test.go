package bench_test

import (
	"sync"
	"testing"
	"time"

	"wincm/internal/bench"
	"wincm/internal/cm"
	"wincm/internal/stm"
	"wincm/internal/txtrace"
)

// traceThreads is the flight-recorder overhead benchmark's concurrency:
// the recorder's budget is specified against the 8-thread list workload.
const traceThreads = 8

// runTraceList drives the sorted-list set from 8 goroutines at the
// paper's 100%-update mix, with probe optionally armed — the workload the
// recorder's overhead budget is measured on (off <1%, 1-in-64 <5%).
func runTraceList(b *testing.B, probe stm.Probe) {
	var opts []stm.Option
	if probe != nil {
		opts = append(opts, stm.WithProbe(probe))
	}
	mgr, err := cm.New("polka", traceThreads)
	if err != nil {
		b.Fatal(err)
	}
	rt := stm.New(traceThreads, mgr, opts...)
	s := bench.NewList()
	bench.Populate(rt.Thread(0), s, 128, 256, 1)
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < traceThreads; i++ {
		quota := b.N / traceThreads
		if i < b.N%traceThreads {
			quota++
		}
		wg.Add(1)
		go func(id, quota int, th *stm.Thread) {
			defer wg.Done()
			g := bench.NewGen(bench.Mix{UpdatePct: 100, KeyRange: 256}, uint64(id)*7919+1)
			for n := 0; n < quota; n++ {
				op := g.Next()
				th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
			}
		}(i, quota, rt.Thread(i))
	}
	wg.Wait()
}

// BenchmarkTraceOverhead compares the list workload with the flight
// recorder fully off (the shipped default: no probe installed, the hot
// path pays nothing) against 1-in-64 sampling with a live collector
// draining the rings — the two cells the recorder's overhead budget is
// enforced on in bench_baseline.txt.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		runTraceList(b, nil)
	})
	b.Run("sampled64", func(b *testing.B) {
		rec := txtrace.NewRecorder(traceThreads, 64, 0)
		col := txtrace.NewCollector(rec, 0)
		done := make(chan struct{})
		var pollWG sync.WaitGroup
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			tick := time.NewTicker(5 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					col.Poll()
				}
			}
		}()
		runTraceList(b, rec)
		b.StopTimer()
		close(done)
		pollWG.Wait()
		col.Poll()
	})
}

// BenchmarkTraceRecorderUnsampled measures the recorder's armed-but-idle
// cost: sampling 1-in-2^30 leaves every transaction after the first
// unsampled, so each attempt pays one counter increment and nothing per
// open. Run with -benchmem; allocs/op must be 0 — the recorder records
// into preallocated rings and never allocates on the hot path (CI asserts
// this cell stays allocation-free).
func BenchmarkTraceRecorderUnsampled(b *testing.B) {
	rec := txtrace.NewRecorder(1, 1<<30, 0)
	mgr, err := cm.New("polka", 1)
	if err != nil {
		b.Fatal(err)
	}
	rt := stm.New(1, mgr, stm.WithProbe(rec))
	th := rt.Thread(0)
	s := bench.NewList()
	bench.Populate(th, s, 128, 256, 1)
	g := bench.NewGen(bench.Mix{UpdatePct: 0, KeyRange: 256}, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := g.Next()
		th.Atomic(func(tx *stm.Tx) { bench.Apply(tx, s, op) })
	}
}
