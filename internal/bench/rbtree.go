package bench

import (
	"wincm/internal/stm"
	"wincm/internal/txmap"
)

// RBTree is the red-black tree set benchmark, a thin Set adapter over the
// transactional ordered map in wincm/internal/txmap (the same structure
// DSTM shipped as its RBTree benchmark).
type RBTree struct {
	t *txmap.Tree[struct{}]
}

var _ Set = (*RBTree)(nil)

// NewRBTree returns an empty tree set.
func NewRBTree() *RBTree { return &RBTree{t: txmap.New[struct{}]()} }

// Name implements Set.
func (r *RBTree) Name() string { return "rbtree" }

// Insert implements Set.
func (r *RBTree) Insert(tx *stm.Tx, key int) bool {
	return r.t.Insert(tx, key, struct{}{})
}

// Remove implements Set.
func (r *RBTree) Remove(tx *stm.Tx, key int) bool {
	return r.t.Delete(tx, key)
}

// Contains implements Set.
func (r *RBTree) Contains(tx *stm.Tx, key int) bool {
	return r.t.Contains(tx, key)
}

// Keys implements Set (quiescent snapshot).
func (r *RBTree) Keys() []int {
	snap := r.t.Snapshot()
	ks := make([]int, len(snap))
	for i, kv := range snap {
		ks[i] = kv.Key
	}
	return ks
}

// Validate checks the underlying tree's red-black invariants (quiescent
// state only); the harness calls it after verification runs.
func (r *RBTree) Validate() error { return r.t.Validate() }
