package txmap_test

import (
	"fmt"

	"wincm/internal/cm"
	"wincm/internal/stm"
	"wincm/internal/txmap"
)

// Example stores and retrieves ordered bindings transactionally.
func Example() {
	rt := stm.New(1, cm.NewPolka())
	tree := txmap.New[string]()
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		tree.Insert(tx, 2, "two")
		tree.Insert(tx, 1, "one")
		tree.Insert(tx, 3, "three")
		tree.Delete(tx, 2)
		tree.ForEach(tx, func(k int, v string) bool {
			fmt.Println(k, v)
			return true
		})
	})
	// Output:
	// 1 one
	// 3 three
}

// ExampleTree_Range walks a key interval in order.
func ExampleTree_Range() {
	rt := stm.New(1, cm.NewPolka())
	tree := txmap.New[int]()
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		for k := 0; k < 10; k++ {
			tree.Insert(tx, k, k*k)
		}
		tree.Range(tx, 3, 5, func(k, v int) bool {
			fmt.Println(k, v)
			return true
		})
	})
	// Output:
	// 3 9
	// 4 16
	// 5 25
}
