package txmap_test

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"wincm/internal/cm"
	_ "wincm/internal/core" // registers the window-based managers
	"wincm/internal/rng"
	"wincm/internal/stm"
	"wincm/internal/txmap"
)

func newRT(t testing.TB, m int) *stm.Runtime {
	t.Helper()
	mgr, err := cm.New("polka", m)
	if err != nil {
		t.Fatal(err)
	}
	return stm.New(m, mgr)
}

func TestEmptyTree(t *testing.T) {
	rt := newRT(t, 1)
	tr := txmap.New[string]()
	rt.Thread(0).Atomic(func(tx *stm.Tx) {
		if tr.Contains(tx, 5) {
			t.Error("empty tree contains 5")
		}
		if _, ok := tr.Get(tx, 5); ok {
			t.Error("Get on empty tree succeeded")
		}
		if tr.Delete(tx, 5) {
			t.Error("Delete on empty tree succeeded")
		}
		if tr.Update(tx, 5, "x") {
			t.Error("Update on empty tree succeeded")
		}
		if tr.Len(tx) != 0 {
			t.Error("empty tree has nonzero length")
		}
		if _, _, ok := tr.Min(tx); ok {
			t.Error("Min on empty tree succeeded")
		}
	})
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInsertGetDelete(t *testing.T) {
	rt := newRT(t, 1)
	tr := txmap.New[string]()
	th := rt.Thread(0)
	th.Atomic(func(tx *stm.Tx) {
		if !tr.Insert(tx, 10, "ten") {
			t.Error("insert 10 failed")
		}
		if tr.Insert(tx, 10, "TEN") {
			t.Error("duplicate insert succeeded")
		}
		if v, ok := tr.Get(tx, 10); !ok || v != "ten" {
			t.Errorf("Get(10) = %q,%v", v, ok)
		}
		if !tr.Update(tx, 10, "TEN") {
			t.Error("update failed")
		}
		if v, _ := tr.Get(tx, 10); v != "TEN" {
			t.Errorf("after update: %q", v)
		}
		if !tr.Delete(tx, 10) {
			t.Error("delete failed")
		}
		if tr.Contains(tx, 10) {
			t.Error("still contains 10")
		}
	})
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestOracleRandomOps drives the tree with random operations, mirroring
// them into a map, validating invariants and contents as it goes.
func TestOracleRandomOps(t *testing.T) {
	const ops, keyRange = 6000, 200
	rt := newRT(t, 1)
	th := rt.Thread(0)
	tr := txmap.New[int]()
	oracle := map[int]int{}
	r := rng.New(42)
	for i := 0; i < ops; i++ {
		key := r.Intn(keyRange)
		val := r.Intn(1000)
		switch r.Intn(4) {
		case 0, 1: // insert twice as often to grow the tree
			var got bool
			th.Atomic(func(tx *stm.Tx) { got = tr.Insert(tx, key, val) })
			_, had := oracle[key]
			if got == had {
				t.Fatalf("op %d: Insert(%d) = %v, oracle had=%v", i, key, got, had)
			}
			if !had {
				oracle[key] = val
			}
		case 2:
			var got bool
			th.Atomic(func(tx *stm.Tx) { got = tr.Delete(tx, key) })
			_, had := oracle[key]
			if got != had {
				t.Fatalf("op %d: Delete(%d) = %v, oracle had=%v", i, key, got, had)
			}
			delete(oracle, key)
		case 3:
			var got bool
			var gv int
			th.Atomic(func(tx *stm.Tx) {
				got = tr.Contains(tx, key)
				gv, _ = tr.Get(tx, key)
			})
			ov, had := oracle[key]
			if got != had || (had && gv != ov) {
				t.Fatalf("op %d: Get(%d) = %d,%v oracle %d,%v", i, key, gv, got, ov, had)
			}
		}
		if i%250 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if len(snap) != len(oracle) {
		t.Fatalf("snapshot has %d keys, oracle %d", len(snap), len(oracle))
	}
	for i, kv := range snap {
		if i > 0 && snap[i-1].Key >= kv.Key {
			t.Fatal("snapshot not sorted")
		}
		if ov := oracle[kv.Key]; ov != kv.Val {
			t.Fatalf("key %d: val %d, oracle %d", kv.Key, kv.Val, ov)
		}
	}
}

// TestDeleteEveryShape deletes every key from trees built in every
// insertion order of a small key set — exhaustive coverage of delete
// fixup cases on small trees.
func TestDeleteEveryShape(t *testing.T) {
	keys := []int{1, 2, 3, 4, 5, 6, 7}
	rt := newRT(t, 1)
	th := rt.Thread(0)
	var perms [][]int
	var permute func(cur, rest []int)
	permute = func(cur, rest []int) {
		if len(rest) == 0 {
			perms = append(perms, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			permute(append(cur, rest[i]), next)
		}
	}
	permute(nil, keys)
	for pi, perm := range perms {
		for _, victim := range keys {
			tr := txmap.New[struct{}]()
			th.Atomic(func(tx *stm.Tx) {
				for _, k := range perm {
					tr.Insert(tx, k, struct{}{})
				}
			})
			th.Atomic(func(tx *stm.Tx) {
				if !tr.Delete(tx, victim) {
					t.Fatalf("perm %d: delete %d failed", pi, victim)
				}
			})
			if err := tr.Validate(); err != nil {
				t.Fatalf("perm %v delete %d: %v", perm, victim, err)
			}
			if got := len(tr.Snapshot()); got != len(keys)-1 {
				t.Fatalf("perm %v delete %d: %d keys left", perm, victim, got)
			}
		}
	}
}

// TestQuickOrderedSnapshot: after any batch of inserts the snapshot is the
// sorted deduplicated key list.
func TestQuickOrderedSnapshot(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	f := func(keys []int16) bool {
		tr := txmap.New[struct{}]()
		seen := map[int]bool{}
		th.Atomic(func(tx *stm.Tx) {
			for _, k := range keys {
				tr.Insert(tx, int(k), struct{}{})
			}
		})
		for _, k := range keys {
			seen[int(k)] = true
		}
		want := make([]int, 0, len(seen))
		for k := range seen {
			want = append(want, k)
		}
		sort.Ints(want)
		snap := tr.Snapshot()
		if len(snap) != len(want) {
			return false
		}
		for i, kv := range snap {
			if kv.Key != want[i] {
				return false
			}
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	rt := newRT(t, 1)
	th := rt.Thread(0)
	tr := txmap.New[int]()
	th.Atomic(func(tx *stm.Tx) {
		for k := 0; k < 100; k += 2 {
			tr.Insert(tx, k, k*10)
		}
	})
	var got []int
	th.Atomic(func(tx *stm.Tx) {
		got = got[:0]
		tr.Range(tx, 10, 20, func(k, v int) bool {
			got = append(got, k)
			return true
		})
	})
	want := []int{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	th.Atomic(func(tx *stm.Tx) {
		n = 0
		tr.Range(tx, 0, 98, func(k, v int) bool {
			n++
			return n < 3
		})
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
	// Min.
	th.Atomic(func(tx *stm.Tx) {
		k, v, ok := tr.Min(tx)
		if !ok || k != 0 || v != 0 {
			t.Errorf("Min = %d,%d,%v", k, v, ok)
		}
	})
}

// TestConcurrentMixedOps hammers one tree from many threads and checks
// final invariants plus conservation of the set size implied by the
// per-thread operation results.
func TestConcurrentMixedOps(t *testing.T) {
	const m, perThread, keyRange = 8, 400, 128
	rt := newRT(t, m)
	tr := txmap.New[int]()
	var inserted, deleted [m]int
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(id int, th *stm.Thread) {
			defer wg.Done()
			r := rng.New(uint64(id) + 7)
			for j := 0; j < perThread; j++ {
				key := r.Intn(keyRange)
				if r.Bool(0.5) {
					ok := false
					th.Atomic(func(tx *stm.Tx) { ok = tr.Insert(tx, key, id) })
					if ok {
						inserted[id]++
					}
				} else {
					ok := false
					th.Atomic(func(tx *stm.Tx) { ok = tr.Delete(tx, key) })
					if ok {
						deleted[id]++
					}
				}
			}
		}(i, rt.Thread(i))
	}
	wg.Wait()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	ins, del := 0, 0
	for i := 0; i < m; i++ {
		ins += inserted[i]
		del += deleted[i]
	}
	if got := len(tr.Snapshot()); got != ins-del {
		t.Errorf("size %d, want %d (=%d inserts − %d deletes)", got, ins-del, ins, del)
	}
}

// TestConcurrentOpsUnderWindowManagers repeats a short mixed run under
// each window variant — the structure the paper's RBTree benchmark uses.
func TestConcurrentOpsUnderWindowManagers(t *testing.T) {
	for _, name := range []string{"online", "online-dynamic", "adaptive", "adaptive-improved", "adaptive-improved-dynamic"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const m, perThread = 4, 150
			mgr, err := cm.New(name, m)
			if err != nil {
				t.Fatal(err)
			}
			rt := stm.New(m, mgr)
			tr := txmap.New[struct{}]()
			var wg sync.WaitGroup
			for i := 0; i < m; i++ {
				wg.Add(1)
				go func(id int, th *stm.Thread) {
					defer wg.Done()
					r := rng.New(uint64(id) + 99)
					for j := 0; j < perThread; j++ {
						key := r.Intn(64)
						if r.Bool(0.5) {
							th.Atomic(func(tx *stm.Tx) { tr.Insert(tx, key, struct{}{}) })
						} else {
							th.Atomic(func(tx *stm.Tx) { tr.Delete(tx, key) })
						}
					}
				}(i, rt.Thread(i))
			}
			wg.Wait()
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
