package txmap

import (
	"fmt"

	"wincm/internal/stm"
)

// KV is one key/value binding in a Snapshot.
type KV[V any] struct {
	Key int
	Val V
}

// Snapshot returns the bindings in key order, read directly (not
// transactionally). It must only be called while no transactions run.
func (t *Tree[V]) Snapshot() []KV[V] {
	var out []KV[V]
	var walk func(n *stm.TVar[nodeData[V]])
	walk = func(n *stm.TVar[nodeData[V]]) {
		if n == t.nilN {
			return
		}
		d := n.Peek()
		walk(d.left)
		out = append(out, KV[V]{d.key, d.val})
		walk(d.right)
	}
	walk(t.root.Peek())
	return out
}

// Validate checks every red-black and structural invariant of the tree:
// BST key order, black root, no red node with a red child, equal black
// height on every path, and parent links consistent with child links.
// It must only be called while no transactions run; it returns the first
// violation found, or nil.
func (t *Tree[V]) Validate() error {
	root := t.root.Peek()
	if root == t.nilN {
		return nil
	}
	if root.Peek().red {
		return fmt.Errorf("txmap: root is red")
	}
	if p := root.Peek().parent; p != t.nilN {
		return fmt.Errorf("txmap: root has parent")
	}
	_, err := t.check(root, nil, nil)
	return err
}

// check validates the subtree at n against the open key interval
// (lo, hi) and returns its black height.
func (t *Tree[V]) check(n *stm.TVar[nodeData[V]], lo, hi *int) (int, error) {
	if n == t.nilN {
		return 1, nil
	}
	d := n.Peek()
	if lo != nil && d.key <= *lo {
		return 0, fmt.Errorf("txmap: key %d violates lower bound %d", d.key, *lo)
	}
	if hi != nil && d.key >= *hi {
		return 0, fmt.Errorf("txmap: key %d violates upper bound %d", d.key, *hi)
	}
	for _, c := range []*stm.TVar[nodeData[V]]{d.left, d.right} {
		if c == t.nilN {
			continue
		}
		cd := c.Peek()
		if cd.parent != n {
			return 0, fmt.Errorf("txmap: node %d has child %d with wrong parent", d.key, cd.key)
		}
		if d.red && cd.red {
			return 0, fmt.Errorf("txmap: red node %d has red child %d", d.key, cd.key)
		}
	}
	lh, err := t.check(d.left, lo, &d.key)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(d.right, &d.key, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("txmap: node %d has black heights %d/%d", d.key, lh, rh)
	}
	if d.red {
		return lh, nil
	}
	return lh + 1, nil
}
