// Package txmap provides a transactional ordered map implemented as a
// red-black tree over STM variables. It is the Go counterpart of the
// red-black tree shipped with DSTM — the paper's RBTree benchmark — and
// the table structure of the STAMP Vacation benchmark.
//
// Every node is one stm.TVar holding the node's data (key, value, color
// and child/parent links); writers clone the node data, exactly like
// DSTM2's shadow-factory objects. All operations must run inside a
// transaction; atomicity and isolation come entirely from the STM.
package txmap

import (
	"math"

	"wincm/internal/stm"
)

// nodeData is the clonable payload of one tree node.
type nodeData[V any] struct {
	key                 int
	val                 V
	red                 bool
	left, right, parent *stm.TVar[nodeData[V]]
}

// Tree is a transactional ordered map with int keys.
//
// The sentinel node nilN represents every leaf and is never written or
// read through the STM (that would funnel all threads through one reader
// set); color tests treat it as black structurally.
type Tree[V any] struct {
	root *stm.TVar[*stm.TVar[nodeData[V]]]
	nilN *stm.TVar[nodeData[V]]
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	nilN := stm.NewTVar(nodeData[V]{})
	return &Tree[V]{
		root: stm.NewTVar[*stm.TVar[nodeData[V]]](nilN),
		nilN: nilN,
	}
}

// get reads node data; n must not be the sentinel.
func (t *Tree[V]) get(tx *stm.Tx, n *stm.TVar[nodeData[V]]) nodeData[V] {
	return stm.Read(tx, n)
}

// isRed reports whether n is a red node; the sentinel is black.
func (t *Tree[V]) isRed(tx *stm.Tx, n *stm.TVar[nodeData[V]]) bool {
	return n != t.nilN && stm.Read(tx, n).red
}

// setRedFn, setParentFn and setValFn are the tree's field updaters in
// stm.ModifyArg shape. They are top-level generic functions on purpose:
// passing setRedFn[V] as a func value costs nothing, where a closure
// capturing the new color would allocate on every recolor.
func setRedFn[V any](d nodeData[V], red bool) nodeData[V] { d.red = red; return d }

func setParentFn[V any](d nodeData[V], p *stm.TVar[nodeData[V]]) nodeData[V] {
	d.parent = p
	return d
}

func setValFn[V any](d nodeData[V], val V) nodeData[V] { d.val = val; return d }

// setRed sets n's color; n must not be the sentinel. A node that already
// has the requested color is left alone — the read costs one reader
// stamp, where the write it avoids would acquire ownership and conflict
// with every concurrent reader of the node.
func (t *Tree[V]) setRed(tx *stm.Tx, n *stm.TVar[nodeData[V]], red bool) {
	if stm.Read(tx, n).red == red {
		return
	}
	stm.ModifyArg(tx, n, red, setRedFn[V])
}

// setParent updates n's parent link unless n is the sentinel. One
// open-for-write instead of a read followed by a write.
func (t *Tree[V]) setParent(tx *stm.Tx, n, p *stm.TVar[nodeData[V]]) {
	if n == t.nilN {
		return
	}
	stm.ModifyArg(tx, n, p, setParentFn[V])
}

// find returns the node with key, or nil if absent.
func (t *Tree[V]) find(tx *stm.Tx, key int) *stm.TVar[nodeData[V]] {
	x := stm.Read(tx, t.root)
	for x != t.nilN {
		d := t.get(tx, x)
		switch {
		case key == d.key:
			return x
		case key < d.key:
			x = d.left
		default:
			x = d.right
		}
	}
	return nil
}

// Contains reports whether key is present.
func (t *Tree[V]) Contains(tx *stm.Tx, key int) bool {
	return t.find(tx, key) != nil
}

// Get returns the value stored under key.
func (t *Tree[V]) Get(tx *stm.Tx, key int) (V, bool) {
	if n := t.find(tx, key); n != nil {
		return t.get(tx, n).val, true
	}
	var zero V
	return zero, false
}

// Update replaces the value under key, reporting whether it was present.
// The replacement is a single open-for-write on the node.
func (t *Tree[V]) Update(tx *stm.Tx, key int, val V) bool {
	n := t.find(tx, key)
	if n == nil {
		return false
	}
	stm.ModifyArg(tx, n, val, setValFn[V])
	return true
}

// Insert adds key→val and reports true, or returns false (leaving the
// existing binding untouched) when key is already present.
func (t *Tree[V]) Insert(tx *stm.Tx, key int, val V) bool {
	parent := t.nilN
	x := stm.Read(tx, t.root)
	var pd nodeData[V]
	for x != t.nilN {
		pd = t.get(tx, x)
		if key == pd.key {
			return false
		}
		parent = x
		if key < pd.key {
			x = pd.left
		} else {
			x = pd.right
		}
	}
	z := stm.NewTVar(nodeData[V]{
		key: key, val: val, red: true,
		left: t.nilN, right: t.nilN, parent: parent,
	})
	if parent == t.nilN {
		stm.Write(tx, t.root, z)
	} else if key < pd.key {
		pd.left = z
		stm.Write(tx, parent, pd)
	} else {
		pd.right = z
		stm.Write(tx, parent, pd)
	}
	t.insertFixup(tx, z)
	return true
}

// insertFixup restores the red-black invariants after inserting z (CLRS).
func (t *Tree[V]) insertFixup(tx *stm.Tx, z *stm.TVar[nodeData[V]]) {
	for {
		zd := t.get(tx, z)
		zp := zd.parent
		if zp == t.nilN || !t.isRed(tx, zp) {
			break
		}
		// Parent is red ⇒ it is not the root ⇒ grandparent is real.
		zpd := t.get(tx, zp)
		zpp := zpd.parent
		zppd := t.get(tx, zpp)
		if zp == zppd.left {
			uncle := zppd.right
			if t.isRed(tx, uncle) {
				t.setRed(tx, zp, false)
				t.setRed(tx, uncle, false)
				t.setRed(tx, zpp, true)
				z = zpp
				continue
			}
			if z == zpd.right {
				z = zp
				t.rotateLeft(tx, z)
				zd = t.get(tx, z)
				zp = zd.parent
			}
			t.setRed(tx, zp, false)
			t.setRed(tx, zpp, true)
			t.rotateRight(tx, zpp)
		} else {
			uncle := zppd.left
			if t.isRed(tx, uncle) {
				t.setRed(tx, zp, false)
				t.setRed(tx, uncle, false)
				t.setRed(tx, zpp, true)
				z = zpp
				continue
			}
			if z == zpd.left {
				z = zp
				t.rotateRight(tx, z)
				zd = t.get(tx, z)
				zp = zd.parent
			}
			t.setRed(tx, zp, false)
			t.setRed(tx, zpp, true)
			t.rotateLeft(tx, zpp)
		}
	}
	root := stm.Read(tx, t.root)
	if t.isRed(tx, root) {
		t.setRed(tx, root, false)
	}
}

// rotateLeft rotates x's right child above x.
func (t *Tree[V]) rotateLeft(tx *stm.Tx, x *stm.TVar[nodeData[V]]) {
	xd := t.get(tx, x)
	y := xd.right
	yd := t.get(tx, y)

	xd.right = yd.left
	t.setParent(tx, yd.left, x)

	yd.parent = xd.parent
	if xd.parent == t.nilN {
		stm.Write(tx, t.root, y)
	} else {
		pd := t.get(tx, xd.parent)
		if pd.left == x {
			pd.left = y
		} else {
			pd.right = y
		}
		stm.Write(tx, xd.parent, pd)
	}
	yd.left = x
	xd.parent = y
	stm.Write(tx, x, xd)
	stm.Write(tx, y, yd)
}

// rotateRight rotates x's left child above x.
func (t *Tree[V]) rotateRight(tx *stm.Tx, x *stm.TVar[nodeData[V]]) {
	xd := t.get(tx, x)
	y := xd.left
	yd := t.get(tx, y)

	xd.left = yd.right
	t.setParent(tx, yd.right, x)

	yd.parent = xd.parent
	if xd.parent == t.nilN {
		stm.Write(tx, t.root, y)
	} else {
		pd := t.get(tx, xd.parent)
		if pd.left == x {
			pd.left = y
		} else {
			pd.right = y
		}
		stm.Write(tx, xd.parent, pd)
	}
	yd.right = x
	xd.parent = y
	stm.Write(tx, x, xd)
	stm.Write(tx, y, yd)
}

// transplant replaces subtree u (whose parent is uParent) with v.
func (t *Tree[V]) transplant(tx *stm.Tx, u, v, uParent *stm.TVar[nodeData[V]]) {
	if uParent == t.nilN {
		stm.Write(tx, t.root, v)
	} else {
		pd := t.get(tx, uParent)
		if pd.left == u {
			pd.left = v
		} else {
			pd.right = v
		}
		stm.Write(tx, uParent, pd)
	}
	t.setParent(tx, v, uParent)
}

// minimumFrom returns the leftmost node of the subtree rooted at x
// (x must be real).
func (t *Tree[V]) minimumFrom(tx *stm.Tx, x *stm.TVar[nodeData[V]]) *stm.TVar[nodeData[V]] {
	for {
		d := t.get(tx, x)
		if d.left == t.nilN {
			return x
		}
		x = d.left
	}
}

// Delete removes key, reporting whether it was present.
func (t *Tree[V]) Delete(tx *stm.Tx, key int) bool {
	z := t.find(tx, key)
	if z == nil {
		return false
	}
	zd := t.get(tx, z)

	var x, xParent *stm.TVar[nodeData[V]]
	removedRed := zd.red
	switch {
	case zd.left == t.nilN:
		x, xParent = zd.right, zd.parent
		t.transplant(tx, z, zd.right, zd.parent)
	case zd.right == t.nilN:
		x, xParent = zd.left, zd.parent
		t.transplant(tx, z, zd.left, zd.parent)
	default:
		y := t.minimumFrom(tx, zd.right)
		yd := t.get(tx, y)
		removedRed = yd.red
		x = yd.right
		if yd.parent == z {
			xParent = y
		} else {
			xParent = yd.parent
			t.transplant(tx, y, yd.right, yd.parent)
			yd.right = zd.right
			t.setParent(tx, zd.right, y)
		}
		t.transplant(tx, z, y, zd.parent)
		yd.left = zd.left
		yd.red = zd.red
		yd.parent = zd.parent
		stm.Write(tx, y, yd)
		t.setParent(tx, zd.left, y)
	}
	if !removedRed {
		t.deleteFixup(tx, x, xParent)
	}
	return true
}

// deleteFixup restores the invariants after removing a black node. x is
// the doubly-black node (possibly the sentinel), parent its parent; the
// sentinel's parent is tracked here explicitly instead of being written
// into the shared sentinel as CLRS does.
func (t *Tree[V]) deleteFixup(tx *stm.Tx, x, parent *stm.TVar[nodeData[V]]) {
	for x != stm.Read(tx, t.root) && !t.isRed(tx, x) {
		pd := t.get(tx, parent)
		if x == pd.left {
			w := pd.right // sibling of a doubly-black node is real
			if t.isRed(tx, w) {
				t.setRed(tx, w, false)
				t.setRed(tx, parent, true)
				t.rotateLeft(tx, parent)
				pd = t.get(tx, parent)
				w = pd.right
			}
			wd := t.get(tx, w)
			if !t.isRed(tx, wd.left) && !t.isRed(tx, wd.right) {
				t.setRed(tx, w, true)
				x = parent
				parent = t.get(tx, x).parent
				continue
			}
			if !t.isRed(tx, wd.right) {
				t.setRed(tx, wd.left, false)
				t.setRed(tx, w, true)
				t.rotateRight(tx, w)
				pd = t.get(tx, parent)
				w = pd.right
				wd = t.get(tx, w)
			}
			t.setRed(tx, w, t.isRed(tx, parent))
			t.setRed(tx, parent, false)
			t.setRed(tx, wd.right, false)
			t.rotateLeft(tx, parent)
			x = stm.Read(tx, t.root)
		} else {
			w := pd.left
			if t.isRed(tx, w) {
				t.setRed(tx, w, false)
				t.setRed(tx, parent, true)
				t.rotateRight(tx, parent)
				pd = t.get(tx, parent)
				w = pd.left
			}
			wd := t.get(tx, w)
			if !t.isRed(tx, wd.left) && !t.isRed(tx, wd.right) {
				t.setRed(tx, w, true)
				x = parent
				parent = t.get(tx, x).parent
				continue
			}
			if !t.isRed(tx, wd.left) {
				t.setRed(tx, wd.right, false)
				t.setRed(tx, w, true)
				t.rotateLeft(tx, w)
				pd = t.get(tx, parent)
				w = pd.left
				wd = t.get(tx, w)
			}
			t.setRed(tx, w, t.isRed(tx, parent))
			t.setRed(tx, parent, false)
			t.setRed(tx, wd.left, false)
			t.rotateRight(tx, parent)
			x = stm.Read(tx, t.root)
		}
	}
	if x != t.nilN {
		t.setRed(tx, x, false)
	}
}

// Min returns the smallest key (and its value). ok is false when empty.
func (t *Tree[V]) Min(tx *stm.Tx) (key int, val V, ok bool) {
	x := stm.Read(tx, t.root)
	if x == t.nilN {
		var zero V
		return 0, zero, false
	}
	d := t.get(tx, t.minimumFrom(tx, x))
	return d.key, d.val, true
}

// Range calls fn in key order for every binding with lo ≤ key ≤ hi; fn
// returning false stops the walk early.
func (t *Tree[V]) Range(tx *stm.Tx, lo, hi int, fn func(key int, val V) bool) {
	t.rangeFrom(tx, stm.Read(tx, t.root), lo, hi, fn)
}

func (t *Tree[V]) rangeFrom(tx *stm.Tx, n *stm.TVar[nodeData[V]], lo, hi int, fn func(int, V) bool) bool {
	if n == t.nilN {
		return true
	}
	d := t.get(tx, n)
	if d.key > lo {
		if !t.rangeFrom(tx, d.left, lo, hi, fn) {
			return false
		}
	}
	if d.key >= lo && d.key <= hi {
		if !fn(d.key, d.val) {
			return false
		}
	}
	if d.key < hi {
		if !t.rangeFrom(tx, d.right, lo, hi, fn) {
			return false
		}
	}
	return true
}

// ForEach calls fn in key order for every binding in the tree.
func (t *Tree[V]) ForEach(tx *stm.Tx, fn func(key int, val V) bool) {
	t.Range(tx, math.MinInt, math.MaxInt, fn)
}

// Len counts the bindings (O(n), transactionally).
func (t *Tree[V]) Len(tx *stm.Tx) int {
	n := 0
	t.ForEach(tx, func(int, V) bool { n++; return true })
	return n
}
