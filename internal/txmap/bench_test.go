package txmap_test

import (
	"testing"

	"wincm/internal/rng"
	"wincm/internal/stm"
	"wincm/internal/txmap"
)

// populate fills a tree with n sequential keys.
func populate(th *stm.Thread, tr *txmap.Tree[int], n int) {
	th.Atomic(func(tx *stm.Tx) {
		for k := 0; k < n; k++ {
			tr.Insert(tx, k, k)
		}
	})
}

// BenchmarkInsertSequential measures insertion into a growing tree.
func BenchmarkInsertSequential(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	tr := txmap.New[int]()
	b.ResetTimer()
	th.Atomic(func(tx *stm.Tx) {
		for i := 0; i < b.N; i++ {
			tr.Insert(tx, i, i)
		}
	})
}

// BenchmarkGet measures lookups in a 1024-key tree.
func BenchmarkGet(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	tr := txmap.New[int]()
	populate(th, tr, 1024)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := r.Intn(1024)
		th.Atomic(func(tx *stm.Tx) { tr.Get(tx, key) })
	}
}

// BenchmarkInsertDelete measures a steady-state update cycle.
func BenchmarkInsertDelete(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	tr := txmap.New[int]()
	populate(th, tr, 512)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := r.Intn(1024)
		th.Atomic(func(tx *stm.Tx) {
			if !tr.Insert(tx, key, i) {
				tr.Delete(tx, key)
			}
		})
	}
}

// BenchmarkRange measures an in-order scan of 64 keys.
func BenchmarkRange(b *testing.B) {
	rt := newRT(b, 1)
	th := rt.Thread(0)
	tr := txmap.New[int]()
	populate(th, tr, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Atomic(func(tx *stm.Tx) {
			n := 0
			tr.Range(tx, 100, 163, func(int, int) bool {
				n++
				return true
			})
		})
	}
}
