package metrics_test

import (
	"fmt"
	"time"

	"wincm/internal/metrics"
	"wincm/internal/stm"
)

// Example aggregates two worker threads into run-level metrics.
func Example() {
	a, b := &metrics.Thread{}, &metrics.Thread{}
	a.Record(stm.TxInfo{Attempts: 1, Duration: time.Millisecond, CommitDur: time.Millisecond})
	b.Record(stm.TxInfo{Attempts: 3, Wasted: 2 * time.Millisecond, Duration: 4 * time.Millisecond, CommitDur: time.Millisecond})
	s := metrics.Aggregate([]*metrics.Thread{a, b}, time.Second)
	fmt.Printf("%.0f commits/s, %.1f aborts/commit\n", s.Throughput(), s.AbortsPerCommit())
	// Output: 2 commits/s, 1.0 aborts/commit
}
