// Package metrics collects the transactional statistics the paper reports:
// throughput (committed transactions per second), aborts per commit,
// execution time, and the Section-IV extension metrics — wasted work,
// repeat conflicts, average committed-transaction duration and average
// response time.
//
// # Time accounting
//
// All durations derive from stm.TxInfo, whose fields partition a logical
// transaction's lifetime as follows:
//
//   - Duration is the response time: the transaction's first attempt start
//     (Desc.Birth) to its commit. It contains everything below.
//   - Wasted is the sum over aborted attempts of (attempt end − attempt
//     start). Contention-manager waits taken *during* an aborted attempt —
//     including the waits of its final, losing conflict — fall inside the
//     attempt's span and are therefore part of Wasted.
//   - CommitDur is the span of the successful attempt only, again
//     including any CM waits taken during it.
//   - Duration − Wasted − CommitDur is the inter-attempt overhead: restart
//     backoff a manager pays in Begin (cm.Backoff), the invisible-read
//     retry backoff, and time queued for the serialized-fallback token.
//     No TxInfo field names it; it is recoverable by subtraction.
//
// Thread.Busy is defined as the total time the thread dedicated to its
// transactions — exactly the sum of Duration. An earlier definition summed
// only Wasted + CommitDur, silently dropping the inter-attempt overhead
// (and with it the CM backoff between a losing attempt and the next), which
// understated Busy and overstated WastedWork under backoff-heavy managers.
//
// For live, time-resolved views of the same quantities see
// wincm/internal/telemetry; FromSnapshot converts one of its snapshots
// into a Summary, making this package a thin consumer of the telemetry
// layer wherever a run is observed mid-flight.
package metrics

import (
	"time"

	"wincm/internal/stm"
	"wincm/internal/telemetry"
)

// Thread accumulates the statistics of one worker thread. It is not
// synchronized: exactly one goroutine records into it, and readers must
// wait for the run to finish.
type Thread struct {
	// Commits is the number of committed transactions.
	Commits int64
	// Aborts is the number of aborted attempts.
	Aborts int64
	// RepeatAborts counts aborts beyond a transaction's first — the
	// transaction conflicted again after retrying (our countable proxy
	// for the paper's "repeat conflicts").
	RepeatAborts int64
	// Wasted is the total time spent in attempts that aborted.
	Wasted time.Duration
	// Busy is the total time dedicated to transactions: aborted attempts,
	// the successful attempt, and the inter-attempt overhead between them
	// (restart backoff, fallback queuing) — i.e. the sum of response
	// times. See the package comment for the exact accounting.
	Busy time.Duration
	// RespSum accumulates response times (first attempt to commit).
	RespSum time.Duration
	// CommitDurSum accumulates the durations of successful attempts.
	CommitDurSum time.Duration
	// FallbackEntries counts transactions that committed holding the
	// serialized-fallback token (they exhausted their retry or deadline
	// budget, or were rescued by the watchdog).
	FallbackEntries int64
	// MaxAttempts is the largest attempt count any single transaction
	// needed — the tail the fallback budgets are meant to bound.
	MaxAttempts int
}

// Record folds one committed transaction's TxInfo into the counters.
func (t *Thread) Record(info stm.TxInfo) {
	t.Commits++
	t.Aborts += int64(info.Aborts())
	if a := info.Aborts(); a > 1 {
		t.RepeatAborts += int64(a - 1)
	}
	t.Wasted += info.Wasted
	t.Busy += info.Duration
	t.RespSum += info.Duration
	t.CommitDurSum += info.CommitDur
	if info.Fallback {
		t.FallbackEntries++
	}
	if info.Attempts > t.MaxAttempts {
		t.MaxAttempts = info.Attempts
	}
}

// Summary is the aggregate of a whole run.
type Summary struct {
	// Threads is the number of worker threads aggregated.
	Threads int
	// Wall is the wall-clock duration of the run.
	Wall time.Duration
	// Commits, Aborts and RepeatAborts sum the per-thread counters.
	Commits, Aborts, RepeatAborts int64
	// Wasted and Busy sum the per-thread execution times.
	Wasted, Busy time.Duration
	// FallbackEntries sums the per-thread serialized-fallback commits and
	// MaxAttempts is the worst attempt count across all threads.
	FallbackEntries int64
	MaxAttempts     int
	// Robustness counters filled in by the harness when fault injection
	// or a watchdog is active (they are runtime-wide, not per-thread):
	// faults injected by the chaos layer and watchdog no-progress trips.
	Stalls, SpuriousAborts, Delays, Perturbs int64
	WatchdogTrips                            int64
	respSum                                  time.Duration
	commitDurSum                             time.Duration
}

// Aggregate combines per-thread counters into a Summary for a run that
// took wall time.
func Aggregate(threads []*Thread, wall time.Duration) Summary {
	s := Summary{Threads: len(threads), Wall: wall}
	for _, t := range threads {
		s.Commits += t.Commits
		s.Aborts += t.Aborts
		s.RepeatAborts += t.RepeatAborts
		s.Wasted += t.Wasted
		s.Busy += t.Busy
		s.respSum += t.RespSum
		s.commitDurSum += t.CommitDurSum
		s.FallbackEntries += t.FallbackEntries
		if t.MaxAttempts > s.MaxAttempts {
			s.MaxAttempts = t.MaxAttempts
		}
	}
	return s
}

// Throughput returns committed transactions per second.
func (s Summary) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Commits) / s.Wall.Seconds()
}

// AbortsPerCommit returns the aborts/commit ratio (Fig. 4's metric).
func (s Summary) AbortsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}

// WastedWork returns the fraction of execution time spent in attempts
// that aborted (Section IV's wasted-work metric).
func (s Summary) WastedWork() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.Wasted) / float64(s.Busy)
}

// MeanResponse returns the average response time per transaction.
func (s Summary) MeanResponse() time.Duration {
	if s.Commits == 0 {
		return 0
	}
	return s.respSum / time.Duration(s.Commits)
}

// MeanCommitDur returns the average duration of committed attempts.
func (s Summary) MeanCommitDur() time.Duration {
	if s.Commits == 0 {
		return 0
	}
	return s.commitDurSum / time.Duration(s.Commits)
}

// FromSnapshot builds a Summary from a telemetry snapshot taken wall into
// a run of the given thread count — the live view of the same aggregates
// Aggregate computes post-run. Counter names follow telemetry.NewTxStats;
// chaos and watchdog gauges, when registered, fill the robustness
// counters. MaxAttempts is approximated by the attempts histogram's
// largest occupied bucket bound (histograms keep bucket bounds, not
// maxima).
func FromSnapshot(snap telemetry.Snapshot, threads int, wall time.Duration) Summary {
	s := Summary{
		Threads:         threads,
		Wall:            wall,
		Commits:         snap.Counters["wincm_commits_total"],
		Aborts:          snap.Counters["wincm_aborts_total"],
		RepeatAborts:    snap.Counters["wincm_repeat_aborts_total"],
		FallbackEntries: snap.Counters["wincm_fallback_commits_total"],
		Wasted:          time.Duration(snap.Counters["wincm_wasted_ns_total"]),
		Busy:            time.Duration(snap.Counters["wincm_busy_ns_total"]),
		Stalls:          int64(snap.Gauges["wincm_chaos_stalls"]),
		SpuriousAborts:  int64(snap.Gauges["wincm_chaos_spurious_aborts"]),
		Delays:          int64(snap.Gauges["wincm_chaos_delays"]),
		Perturbs:        int64(snap.Gauges["wincm_chaos_perturbs"]),
		WatchdogTrips:   int64(snap.Gauges["wincm_watchdog_trips"]),
	}
	if h, ok := snap.Histograms["wincm_response_ns"]; ok {
		s.respSum = time.Duration(h.Sum)
	}
	if h, ok := snap.Histograms["wincm_commit_duration_ns"]; ok {
		s.commitDurSum = time.Duration(h.Sum)
	}
	if h, ok := snap.Histograms["wincm_tx_attempts"]; ok {
		for i := telemetry.NumBuckets - 1; i >= 0; i-- {
			if h.Buckets[i] > 0 {
				s.MaxAttempts = int(telemetry.BucketUpper(i))
				break
			}
		}
	}
	return s
}
