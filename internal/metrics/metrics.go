// Package metrics collects the transactional statistics the paper reports:
// throughput (committed transactions per second), aborts per commit,
// execution time, and the Section-IV extension metrics — wasted work,
// repeat conflicts, average committed-transaction duration and average
// response time.
package metrics

import (
	"time"

	"wincm/internal/stm"
)

// Thread accumulates the statistics of one worker thread. It is not
// synchronized: exactly one goroutine records into it, and readers must
// wait for the run to finish.
type Thread struct {
	// Commits is the number of committed transactions.
	Commits int64
	// Aborts is the number of aborted attempts.
	Aborts int64
	// RepeatAborts counts aborts beyond a transaction's first — the
	// transaction conflicted again after retrying (our countable proxy
	// for the paper's "repeat conflicts").
	RepeatAborts int64
	// Wasted is the total time spent in attempts that aborted.
	Wasted time.Duration
	// Busy is the total time spent executing attempts (useful + wasted).
	Busy time.Duration
	// RespSum accumulates response times (first attempt to commit).
	RespSum time.Duration
	// CommitDurSum accumulates the durations of successful attempts.
	CommitDurSum time.Duration
	// FallbackEntries counts transactions that committed holding the
	// serialized-fallback token (they exhausted their retry or deadline
	// budget, or were rescued by the watchdog).
	FallbackEntries int64
	// MaxAttempts is the largest attempt count any single transaction
	// needed — the tail the fallback budgets are meant to bound.
	MaxAttempts int
}

// Record folds one committed transaction's TxInfo into the counters.
func (t *Thread) Record(info stm.TxInfo) {
	t.Commits++
	t.Aborts += int64(info.Aborts())
	if a := info.Aborts(); a > 1 {
		t.RepeatAborts += int64(a - 1)
	}
	t.Wasted += info.Wasted
	t.Busy += info.Wasted + info.CommitDur
	t.RespSum += info.Duration
	t.CommitDurSum += info.CommitDur
	if info.Fallback {
		t.FallbackEntries++
	}
	if info.Attempts > t.MaxAttempts {
		t.MaxAttempts = info.Attempts
	}
}

// Summary is the aggregate of a whole run.
type Summary struct {
	// Threads is the number of worker threads aggregated.
	Threads int
	// Wall is the wall-clock duration of the run.
	Wall time.Duration
	// Commits, Aborts and RepeatAborts sum the per-thread counters.
	Commits, Aborts, RepeatAborts int64
	// Wasted and Busy sum the per-thread execution times.
	Wasted, Busy time.Duration
	// FallbackEntries sums the per-thread serialized-fallback commits and
	// MaxAttempts is the worst attempt count across all threads.
	FallbackEntries int64
	MaxAttempts     int
	// Robustness counters filled in by the harness when fault injection
	// or a watchdog is active (they are runtime-wide, not per-thread):
	// faults injected by the chaos layer and watchdog no-progress trips.
	Stalls, SpuriousAborts, Delays, Perturbs int64
	WatchdogTrips                            int64
	respSum                                  time.Duration
	commitDurSum                             time.Duration
}

// Aggregate combines per-thread counters into a Summary for a run that
// took wall time.
func Aggregate(threads []*Thread, wall time.Duration) Summary {
	s := Summary{Threads: len(threads), Wall: wall}
	for _, t := range threads {
		s.Commits += t.Commits
		s.Aborts += t.Aborts
		s.RepeatAborts += t.RepeatAborts
		s.Wasted += t.Wasted
		s.Busy += t.Busy
		s.respSum += t.RespSum
		s.commitDurSum += t.CommitDurSum
		s.FallbackEntries += t.FallbackEntries
		if t.MaxAttempts > s.MaxAttempts {
			s.MaxAttempts = t.MaxAttempts
		}
	}
	return s
}

// Throughput returns committed transactions per second.
func (s Summary) Throughput() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Commits) / s.Wall.Seconds()
}

// AbortsPerCommit returns the aborts/commit ratio (Fig. 4's metric).
func (s Summary) AbortsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits)
}

// WastedWork returns the fraction of execution time spent in attempts
// that aborted (Section IV's wasted-work metric).
func (s Summary) WastedWork() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.Wasted) / float64(s.Busy)
}

// MeanResponse returns the average response time per transaction.
func (s Summary) MeanResponse() time.Duration {
	if s.Commits == 0 {
		return 0
	}
	return s.respSum / time.Duration(s.Commits)
}

// MeanCommitDur returns the average duration of committed attempts.
func (s Summary) MeanCommitDur() time.Duration {
	if s.Commits == 0 {
		return 0
	}
	return s.commitDurSum / time.Duration(s.Commits)
}
