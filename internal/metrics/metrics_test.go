package metrics_test

import (
	"testing"
	"time"

	"wincm/internal/metrics"
	"wincm/internal/stm"
	"wincm/internal/telemetry"
)

func info(attempts int, wasted, dur, commitDur time.Duration) stm.TxInfo {
	return stm.TxInfo{Attempts: attempts, Wasted: wasted, Duration: dur, CommitDur: commitDur}
}

func TestRecordCountsAbortsAndRepeats(t *testing.T) {
	var th metrics.Thread
	th.Record(info(1, 0, time.Millisecond, time.Millisecond))
	th.Record(info(2, time.Millisecond, 3*time.Millisecond, time.Millisecond))
	th.Record(info(4, 5*time.Millisecond, 8*time.Millisecond, time.Millisecond))
	if th.Commits != 3 {
		t.Errorf("Commits = %d", th.Commits)
	}
	if th.Aborts != 0+1+3 {
		t.Errorf("Aborts = %d", th.Aborts)
	}
	// Repeats: only the 4-attempt transaction retried more than once
	// (3 aborts ⇒ 2 repeats).
	if th.RepeatAborts != 2 {
		t.Errorf("RepeatAborts = %d", th.RepeatAborts)
	}
	if th.Wasted != 6*time.Millisecond {
		t.Errorf("Wasted = %v", th.Wasted)
	}
	// Busy is the sum of response times (Duration), which includes the
	// inter-attempt overhead on top of Wasted + CommitDur.
	if th.Busy != (1+3+8)*time.Millisecond {
		t.Errorf("Busy = %v", th.Busy)
	}
}

func TestAggregateAndDerivedMetrics(t *testing.T) {
	a, b := &metrics.Thread{}, &metrics.Thread{}
	a.Record(info(2, 2*time.Millisecond, 4*time.Millisecond, 2*time.Millisecond))
	b.Record(info(1, 0, 2*time.Millisecond, 2*time.Millisecond))
	b.Record(info(1, 0, 2*time.Millisecond, 2*time.Millisecond))
	s := metrics.Aggregate([]*metrics.Thread{a, b}, 2*time.Second)
	if s.Threads != 2 || s.Commits != 3 || s.Aborts != 1 {
		t.Errorf("aggregate = %+v", s)
	}
	if got := s.Throughput(); got != 1.5 {
		t.Errorf("Throughput = %v", got)
	}
	if got := s.AbortsPerCommit(); got != 1.0/3 {
		t.Errorf("AbortsPerCommit = %v", got)
	}
	// Wasted 2ms of busy (= sum of Durations) 4+2+2=8ms.
	if got := s.WastedWork(); got != 0.25 {
		t.Errorf("WastedWork = %v", got)
	}
	if got := s.MeanResponse(); got != (4+2+2)*time.Millisecond/3 {
		t.Errorf("MeanResponse = %v", got)
	}
	if got := s.MeanCommitDur(); got != 2*time.Millisecond {
		t.Errorf("MeanCommitDur = %v", got)
	}
}

// TestRecordRobustnessCounters: fallback entries and the max-attempts
// high-water mark are folded per thread.
func TestRecordRobustnessCounters(t *testing.T) {
	var th metrics.Thread
	th.Record(info(1, 0, time.Millisecond, time.Millisecond))
	fb := info(9, time.Millisecond, 2*time.Millisecond, time.Millisecond)
	fb.Fallback = true
	th.Record(fb)
	th.Record(info(3, 0, time.Millisecond, time.Millisecond))
	if th.FallbackEntries != 1 {
		t.Errorf("FallbackEntries = %d, want 1", th.FallbackEntries)
	}
	if th.MaxAttempts != 9 {
		t.Errorf("MaxAttempts = %d, want 9", th.MaxAttempts)
	}
}

// TestAggregateRobustnessCounters: Aggregate sums fallback entries across
// threads, takes the worst MaxAttempts, and leaves the harness-filled
// chaos counters (stalls, spurious aborts, watchdog trips) zeroed.
func TestAggregateRobustnessCounters(t *testing.T) {
	a, b, c := &metrics.Thread{}, &metrics.Thread{}, &metrics.Thread{}
	fb := info(4, 0, time.Millisecond, time.Millisecond)
	fb.Fallback = true
	a.Record(fb)
	a.Record(info(2, 0, time.Millisecond, time.Millisecond))
	fb2 := info(17, 0, time.Millisecond, time.Millisecond)
	fb2.Fallback = true
	b.Record(fb2)
	c.Record(info(1, 0, time.Millisecond, time.Millisecond))
	s := metrics.Aggregate([]*metrics.Thread{a, b, c}, time.Second)
	if s.FallbackEntries != 2 {
		t.Errorf("FallbackEntries = %d, want 2", s.FallbackEntries)
	}
	if s.MaxAttempts != 17 {
		t.Errorf("MaxAttempts = %d, want 17 (worst thread)", s.MaxAttempts)
	}
	if s.Stalls != 0 || s.SpuriousAborts != 0 || s.Delays != 0 || s.Perturbs != 0 || s.WatchdogTrips != 0 {
		t.Errorf("chaos counters should be zero until the harness fills them: %+v", s)
	}
}

// TestFromSnapshot: a telemetry snapshot round-trips into the same
// Summary Aggregate would have produced from equivalent per-thread
// counters, including the robustness gauges and derived means.
func TestFromSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	tx := telemetry.NewTxStats(reg, 2)
	reg.RegisterGauge(telemetry.NewGauge("wincm_chaos_stalls", "", func() float64 { return 3 }))
	reg.RegisterGauge(telemetry.NewGauge("wincm_watchdog_trips", "", func() float64 { return 1 }))
	tx.RecordTx(0, info(1, 0, 2*time.Millisecond, 2*time.Millisecond))
	fb := info(5, 3*time.Millisecond, 6*time.Millisecond, time.Millisecond)
	fb.Fallback = true
	tx.RecordTx(1, fb)

	s := metrics.FromSnapshot(reg.Snapshot(), 2, time.Second)
	if s.Threads != 2 || s.Wall != time.Second {
		t.Errorf("shape = %+v", s)
	}
	if s.Commits != 2 || s.Aborts != 4 || s.RepeatAborts != 3 || s.FallbackEntries != 1 {
		t.Errorf("counters = %+v", s)
	}
	if s.Wasted != 3*time.Millisecond || s.Busy != 8*time.Millisecond {
		t.Errorf("times: Wasted=%v Busy=%v", s.Wasted, s.Busy)
	}
	if s.Stalls != 3 || s.WatchdogTrips != 1 {
		t.Errorf("robustness: Stalls=%d WatchdogTrips=%d", s.Stalls, s.WatchdogTrips)
	}
	if got := s.MeanResponse(); got != 4*time.Millisecond {
		t.Errorf("MeanResponse = %v", got)
	}
	// Attempts 1 and 5 land in log2 buckets; the 5 lands in [4,7], so the
	// approximated MaxAttempts is that bucket's upper bound.
	if s.MaxAttempts != 7 {
		t.Errorf("MaxAttempts = %d, want 7 (bucket upper bound)", s.MaxAttempts)
	}
}

func TestZeroValueSummaries(t *testing.T) {
	var s metrics.Summary
	if s.Throughput() != 0 || s.AbortsPerCommit() != 0 || s.WastedWork() != 0 {
		t.Error("zero summary produced nonzero ratios")
	}
	if s.MeanResponse() != 0 || s.MeanCommitDur() != 0 {
		t.Error("zero summary produced nonzero durations")
	}
}
