# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench figures chaos theory loc ci

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/stm/ ./internal/core/ ./internal/txmap/ ./internal/txhash/ ./internal/chaos/

# What the GitHub workflow runs (.github/workflows/ci.yml).
ci:
	go build ./...
	go vet ./...
	go test -race -short ./...

# Bounded iterations so the full matrix stays minutes, not hours.
bench:
	go test -bench=. -benchmem -benchtime=300x ./...

# Reproduce the paper's figures (CI-scale; add -paper for the full regime).
figures:
	go run ./cmd/winbench -fig all

# Robustness matrix: every manager under deterministic fault injection.
chaos:
	go run ./cmd/winbench -fig chaos

theory:
	go run ./cmd/wintheory
	go run ./cmd/wintheory -ratio

loc:
	@find . -name '*.go' | xargs wc -l | tail -1
