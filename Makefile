# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-check bench-baseline figures chaos theory walcrash trace-smoke kv-smoke loc ci

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./internal/stm/ ./internal/core/ ./internal/txmap/ ./internal/txbtree/ ./internal/txhash/ ./internal/chaos/ ./internal/bench/ ./internal/vacation/ ./internal/wal/ ./internal/kv/
	go test -race -short ./internal/harness/

# What the GitHub workflow runs (.github/workflows/ci.yml).
ci:
	go build ./...
	go vet ./...
	go test -race -short ./...

# Bounded iterations so the full matrix stays minutes, not hours.
bench:
	go test -bench=. -benchmem -benchtime=300x ./...

# The CI regression gate: rerun the baseline cells and compare with
# cmd/benchcmp (fails on >10% ns/op regression against bench_baseline.txt).
# The baseline spans two packages: the data-structure workloads in
# internal/bench and the frame-clock cells in internal/core.
BASELINE_BENCH = 'BenchmarkSetOps/(list|rbtree|skiplist)|BenchmarkListParallel$$|BenchmarkReadOnlyCommitted|BenchmarkRBTreeParallel/M16$$|BenchmarkVacationParallel/M16$$|BenchmarkWriteHeavyParallel$$|BenchmarkCommittedWrite$$'
LAZY_BENCH = 'BenchmarkLazyCommittedRead$$|BenchmarkLazyCommittedWrite$$|BenchmarkLazyListParallel$$'
CORE_BENCH = 'BenchmarkFrameClockCommitParallel$$|BenchmarkDynamicManagerList/M16$$'
DURABLE_BENCH = 'BenchmarkDurableCommit$$'
TRACE_BENCH = 'BenchmarkTraceOverhead/(off|sampled64)$$|BenchmarkTraceRecorderUnsampled$$'
BTREE_BENCH = 'BenchmarkTxBTreeLookup$$|BenchmarkTxBTreeParallel/M(8|16)$$'
KV_BENCH = 'BenchmarkKVLocalOp/(get|set)$$|BenchmarkKVPipelined$$'
bench-check:
	go test -run xxx -bench $(BASELINE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee /tmp/bench_new.txt
	go test -run xxx -bench $(LAZY_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee -a /tmp/bench_new.txt
	go test -run xxx -bench $(TRACE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee -a /tmp/bench_new.txt
	go test -run xxx -bench $(BTREE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee -a /tmp/bench_new.txt
	go test -run xxx -bench $(CORE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/core/ | tee -a /tmp/bench_new.txt
	go test -run xxx -bench $(DURABLE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/harness/ | tee -a /tmp/bench_new.txt
	go test -run xxx -bench $(KV_BENCH) -benchmem -benchtime 1s -count 5 ./internal/kv/ | tee -a /tmp/bench_new.txt
	go run ./cmd/benchcmp -threshold 0.10 bench_baseline.txt /tmp/bench_new.txt
	grep 'BenchmarkTraceRecorderUnsampled' /tmp/bench_new.txt | awk '{ if ($$NF != "allocs/op" || $$(NF-1) != 0) exit 1 }'
	grep 'BenchmarkLazyCommittedRead' /tmp/bench_new.txt | awk '{ if ($$NF != "allocs/op" || $$(NF-1) != 0) exit 1 }'
	grep 'BenchmarkLazyCommittedWrite' /tmp/bench_new.txt | awk '{ if ($$NF != "allocs/op" || $$(NF-1) != 0) exit 1 }'
	grep 'BenchmarkTxBTreeLookup' /tmp/bench_new.txt | awk '{ if ($$NF != "allocs/op" || $$(NF-1) != 0) exit 1 }'
	grep 'BenchmarkKVLocalOp/get' /tmp/bench_new.txt | awk '{ if ($$NF != "allocs/op" || $$(NF-1) != 0) exit 1 }'
	grep 'BenchmarkKVPipelined' /tmp/bench_new.txt | awk '{ if ($$NF != "allocs/op" || $$(NF-1) != 0) exit 1 }'

# Refresh the checked-in baseline after an intentional performance change.
bench-baseline:
	go test -run xxx -bench $(BASELINE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee bench_baseline.txt
	go test -run xxx -bench $(LAZY_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee -a bench_baseline.txt
	go test -run xxx -bench $(TRACE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee -a bench_baseline.txt
	go test -run xxx -bench $(BTREE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/bench/ | tee -a bench_baseline.txt
	go test -run xxx -bench $(CORE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/core/ | tee -a bench_baseline.txt
	go test -run xxx -bench $(DURABLE_BENCH) -benchmem -benchtime 1s -count 5 ./internal/harness/ | tee -a bench_baseline.txt
	go test -run xxx -bench $(KV_BENCH) -benchmem -benchtime 1s -count 5 ./internal/kv/ | tee -a bench_baseline.txt

# Reproduce the paper's figures (CI-scale; add -paper for the full regime).
figures:
	go run ./cmd/winbench -fig all

# Robustness matrix: every manager under deterministic fault injection.
chaos:
	go run ./cmd/winbench -fig chaos

# Crash-recovery gate: >= 100 randomized crash points, all must recover.
walcrash:
	go run ./cmd/walcrash -seeds 8 -rounds 13

# KV service smoke: winkv serves Zipfian winload traffic (including
# cross-shard transactions), /metrics scrapes, commits flow, and the
# watchdog never trips.
kv-smoke:
	go build -o /tmp/winkv-smoke ./cmd/winkv
	go build -o /tmp/winload-smoke ./cmd/winload
	/tmp/winkv-smoke -addr 127.0.0.1:7390 -shards 4 -threads 2 -metrics 127.0.0.1:7391 & \
	KV=$$!; sleep 1; \
	/tmp/winload-smoke -addr 127.0.0.1:7390 -sessions 8 -keys 100000 -theta 0.9 \
		-dur 3s -depth 4 -mset 0.1 -mget 0.1 || { kill $$KV; exit 1; }; \
	curl -fsS http://127.0.0.1:7391/metrics > /tmp/kv_metrics.out || { kill $$KV; exit 1; }; \
	status=0; \
	grep -q 'wincm_kv_shard_commits{shard="3"}' /tmp/kv_metrics.out || status=1; \
	awk '/^wincm_kv_shard_commits/ { s += $$2 } END { exit (s > 0 ? 0 : 1) }' /tmp/kv_metrics.out || status=1; \
	grep -q '^wincm_kv_watchdog_trips_total 0$$' /tmp/kv_metrics.out || status=1; \
	kill -INT $$KV; wait $$KV; exit $$status

# Flight-recorder smoke: a traced run must emit a Perfetto-loadable trace.
trace-smoke:
	go run ./cmd/winbench -fig trace -dur 300ms -trace-out /tmp/wincm-trace.json
	go run ./cmd/tracecheck /tmp/wincm-trace.json

theory:
	go run ./cmd/wintheory
	go run ./cmd/wintheory -ratio

loc:
	@find . -name '*.go' | xargs wc -l | tail -1
